// Package planted generates benchmark graphs with known overlapping
// community structure, in the spirit of the LFR benchmark (Lancichinetti,
// Fortunato & Radicchi 2008) but simplified to the knobs that matter for
// link clustering: community count and sizes, a mixing parameter μ giving
// the fraction of inter-community edges, and a fraction of nodes belonging
// to two communities. Ground truth is returned as a node cover, so
// recovered link communities can be scored with overlapping NMI
// (internal/onmi).
//
// The paper's introduction motivates link clustering with exactly such
// networks — social and biological graphs whose nodes straddle several
// communities — and this generator provides the controlled version of that
// workload.
package planted

import (
	"fmt"
	"sort"

	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

// Config parameterizes the generator.
type Config struct {
	Nodes       int     // number of vertices (> 0)
	Communities int     // number of planted communities (> 0, <= Nodes)
	AvgDegree   float64 // target average degree (> 0)
	Mu          float64 // fraction of inter-community edges, in [0, 1)
	OverlapFrac float64 // fraction of nodes with two memberships, in [0, 1]
	Seed        uint64
}

// DefaultConfig returns a moderate benchmark: 200 nodes, 8 communities,
// average degree 12, 20% mixing, 10% overlapping nodes.
func DefaultConfig() Config {
	return Config{
		Nodes:       200,
		Communities: 8,
		AvgDegree:   12,
		Mu:          0.2,
		OverlapFrac: 0.1,
		Seed:        1,
	}
}

func (c Config) validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("planted: Nodes must be positive, got %d", c.Nodes)
	case c.Communities <= 0 || c.Communities > c.Nodes:
		return fmt.Errorf("planted: Communities must be in [1, %d], got %d", c.Nodes, c.Communities)
	case c.AvgDegree <= 0:
		return fmt.Errorf("planted: AvgDegree must be positive, got %v", c.AvgDegree)
	case c.Mu < 0 || c.Mu >= 1:
		return fmt.Errorf("planted: Mu must be in [0, 1), got %v", c.Mu)
	case c.OverlapFrac < 0 || c.OverlapFrac > 1:
		return fmt.Errorf("planted: OverlapFrac must be in [0, 1], got %v", c.OverlapFrac)
	}
	return nil
}

// Benchmark is a generated graph with its ground-truth cover.
type Benchmark struct {
	Graph *graph.Graph
	// Cover[c] is the sorted node set of planted community c. Overlapping
	// nodes appear in two communities.
	Cover [][]int32
	// Memberships[v] lists the communities of node v (one or two).
	Memberships [][]int
}

// Generate builds a benchmark instance. The construction: nodes are dealt
// round-robin into communities; a fraction additionally joins a second
// community; edges are sampled per node to reach the target degree, choosing
// an intra-community partner with probability 1−μ (weight drawn from
// [0.6, 1.0]) and a uniform partner otherwise (weight from [0.05, 0.4]).
// The same configuration always yields the same benchmark.
func Generate(cfg Config) (*Benchmark, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)

	memberships := make([][]int, cfg.Nodes)
	members := make([][]int32, cfg.Communities)
	join := func(v, c int) {
		memberships[v] = append(memberships[v], c)
		members[c] = append(members[c], int32(v))
	}
	for v := 0; v < cfg.Nodes; v++ {
		join(v, v%cfg.Communities)
	}
	overlappers := int(cfg.OverlapFrac * float64(cfg.Nodes))
	if cfg.Communities > 1 {
		for i := 0; i < overlappers; i++ {
			v := src.Intn(cfg.Nodes)
			if len(memberships[v]) > 1 {
				continue // already overlapping; fraction is approximate
			}
			second := (memberships[v][0] + 1 + src.Intn(cfg.Communities-1)) % cfg.Communities
			join(v, second)
		}
	}

	b := graph.NewBuilder(cfg.Nodes)
	targetEdges := int(cfg.AvgDegree * float64(cfg.Nodes) / 2)
	attempts := 0
	maxAttempts := targetEdges * 50
	for b.NumEdges() < targetEdges && attempts < maxAttempts {
		attempts++
		u := src.Intn(cfg.Nodes)
		var v int
		var w float64
		if src.Float64() >= cfg.Mu {
			// Intra-community partner.
			c := memberships[u][src.Intn(len(memberships[u]))]
			peer := members[c][src.Intn(len(members[c]))]
			v = int(peer)
			w = 0.6 + 0.4*src.Float64()
		} else {
			v = src.Intn(cfg.Nodes)
			w = 0.05 + 0.35*src.Float64()
		}
		if u == v {
			continue
		}
		// Duplicate pairs overwrite the weight; only count new edges.
		before := b.NumEdges()
		if err := b.AddEdge(u, v, w); err != nil {
			return nil, err
		}
		if b.NumEdges() == before {
			continue
		}
	}

	for c := range members {
		sort.Slice(members[c], func(i, j int) bool { return members[c][i] < members[c][j] })
	}
	perm := src.Perm(b.NumEdges())
	return &Benchmark{
		Graph:       b.Build(perm),
		Cover:       members,
		Memberships: memberships,
	}, nil
}
