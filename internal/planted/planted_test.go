package planted

import (
	"testing"

	"linkclust/internal/graph"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Graph.NumVertices() != cfg.Nodes {
		t.Fatalf("vertices = %d, want %d", b.Graph.NumVertices(), cfg.Nodes)
	}
	target := int(cfg.AvgDegree * float64(cfg.Nodes) / 2)
	if b.Graph.NumEdges() < target*8/10 {
		t.Fatalf("edges = %d, want near %d", b.Graph.NumEdges(), target)
	}
	if len(b.Cover) != cfg.Communities {
		t.Fatalf("cover has %d communities, want %d", len(b.Cover), cfg.Communities)
	}
	// Every node has 1 or 2 memberships, consistent with the cover.
	seen := make(map[int32]int)
	for c, comm := range b.Cover {
		for _, v := range comm {
			seen[v]++
			found := false
			for _, m := range b.Memberships[v] {
				if m == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d in cover %d but not in memberships", v, c)
			}
		}
	}
	overlapping := 0
	for v := 0; v < cfg.Nodes; v++ {
		m := len(b.Memberships[v])
		if m < 1 || m > 2 {
			t.Fatalf("node %d has %d memberships", v, m)
		}
		if seen[int32(v)] != m {
			t.Fatalf("node %d: cover count %d != membership count %d", v, seen[int32(v)], m)
		}
		if m == 2 {
			overlapping++
		}
	}
	if overlapping == 0 {
		t.Fatal("no overlapping nodes generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	for i := 0; i < a.Graph.NumEdges(); i++ {
		if a.Graph.Edge(i) != b.Graph.Edge(i) {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestGenerateMixingAffectsStructure(t *testing.T) {
	// With low mu, intra-community edges dominate: the average weight of
	// edges inside a community should exceed that across communities.
	cfg := DefaultConfig()
	cfg.Mu = 0.15
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameComm := func(u, v int32) bool {
		for _, cu := range b.Memberships[u] {
			for _, cv := range b.Memberships[v] {
				if cu == cv {
					return true
				}
			}
		}
		return false
	}
	var intraW, interW float64
	var intraN, interN int
	for _, e := range b.Graph.Edges() {
		if sameComm(e.U, e.V) {
			intraW += e.Weight
			intraN++
		} else {
			interW += e.Weight
			interN++
		}
	}
	if intraN == 0 || interN == 0 {
		t.Fatalf("degenerate split: %d intra, %d inter", intraN, interN)
	}
	if intraN < 2*interN {
		t.Fatalf("intra edges (%d) should dominate inter (%d) at mu=0.15", intraN, interN)
	}
	if intraW/float64(intraN) <= interW/float64(interN) {
		t.Fatal("intra-community edges should be heavier")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Communities: 1, AvgDegree: 2},
		{Nodes: 10, Communities: 0, AvgDegree: 2},
		{Nodes: 10, Communities: 11, AvgDegree: 2},
		{Nodes: 10, Communities: 2, AvgDegree: 0},
		{Nodes: 10, Communities: 2, AvgDegree: 2, Mu: 1},
		{Nodes: 10, Communities: 2, AvgDegree: 2, Mu: -0.1},
		{Nodes: 10, Communities: 2, AvgDegree: 2, OverlapFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateSingleCommunity(t *testing.T) {
	cfg := Config{Nodes: 20, Communities: 1, AvgDegree: 4, Mu: 0.1, OverlapFrac: 0.5, Seed: 2}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With one community nobody can overlap.
	for v, m := range b.Memberships {
		if len(m) != 1 {
			t.Fatalf("node %d has %d memberships with 1 community", v, len(m))
		}
	}
	if _, count := graph.ConnectedComponents(b.Graph); count > 5 {
		t.Fatalf("single community fractured into %d components", count)
	}
}
