// Package plot renders small ASCII scatter/line charts for the benchmark
// harness, so the figure-regeneration CLI can show curve shapes (Fig. 2's
// sigmoid curves, Fig. 6's scaling curves) directly in a terminal next to
// the tabular data.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Options configures a chart.
type Options struct {
	// Width and Height are the plot-area dimensions in characters
	// (defaults 64×16).
	Width, Height int
	// LogX plots log10(x); every x must then be positive.
	LogX bool
	// Title, XLabel and YLabel annotate the chart.
	Title, XLabel, YLabel string
}

// seriesMarkers are assigned to series in order.
var seriesMarkers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series into w as an ASCII chart with axes, ticks and a
// legend. Overlapping points show the marker of the later series.
func Render(w io.Writer, series []Series, opts Options) error {
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	if opts.Width <= 0 {
		opts.Width = 64
	}
	if opts.Height <= 0 {
		opts.Height = 16
	}
	tx := func(x float64) float64 { return x }
	if opts.LogX {
		tx = math.Log10
	}

	// Data ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if opts.LogX && s.X[i] <= 0 {
				return fmt.Errorf("plot: series %q has non-positive x %v with LogX", s.Name, s.X[i])
			}
			x, y := tx(s.X[i]), s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) {
				return fmt.Errorf("plot: series %q contains NaN", s.Name)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			points++
		}
	}
	if points == 0 {
		return errors.New("plot: series contain no points")
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}

	// Rasterize.
	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		for i := range s.X {
			cx := int(math.Round((tx(s.X[i]) - minX) / (maxX - minX) * float64(opts.Width-1)))
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(opts.Height-1)))
			row := opts.Height - 1 - cy // y grows upward
			grid[row][cx] = marker
		}
	}

	// Emit.
	if opts.Title != "" {
		fmt.Fprintf(w, "%s\n", opts.Title)
	}
	yTickRows := map[int]float64{
		0:               maxY,
		opts.Height / 2: (minY + maxY) / 2,
		opts.Height - 1: minY,
	}
	labelWidth := 10
	for r := 0; r < opts.Height; r++ {
		label := strings.Repeat(" ", labelWidth)
		if v, ok := yTickRows[r]; ok {
			label = fmt.Sprintf("%*s", labelWidth, compact(v))
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", opts.Width))
	lo, hi := compact(minX), compact(maxX)
	if opts.LogX {
		lo, hi = "10^"+lo, "10^"+hi
	}
	gap := opts.Width - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), lo, strings.Repeat(" ", gap), hi)
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(w, "%s  x: %s, y: %s\n", strings.Repeat(" ", labelWidth), opts.XLabel, opts.YLabel)
	}
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarkers[si%len(seriesMarkers)], s.Name))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", labelWidth), strings.Join(legend, "   "))
	return nil
}

// compact renders a tick value briefly.
func compact(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 0.01 && a < 10000:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.1e", v)
	}
}
