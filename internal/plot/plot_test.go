package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, []Series{
		{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
	}, Options{Width: 20, Height: 10, Title: "demo", XLabel: "t", YLabel: "v"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "* line", "x: t, y: v", "+--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// An increasing line has its marker in the top-right region and the
	// bottom-left corner of the plot area.
	lines := strings.Split(out, "\n")
	var rows []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			rows = append(rows, l[strings.Index(l, "|")+1:])
		}
	}
	if len(rows) != 10 {
		t.Fatalf("%d plot rows, want 10", len(rows))
	}
	if !strings.Contains(rows[0], "*") || !strings.Contains(rows[len(rows)-1], "*") {
		t.Fatalf("line endpoints missing:\n%s", out)
	}
	if strings.TrimSpace(rows[0])[0] != '*' {
		// top row should only have the right-end marker
		t.Fatalf("unexpected top row content %q", rows[0])
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 0}},
		{Name: "b", X: []float64{0, 1}, Y: []float64{1, 1}},
	}, Options{Width: 10, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "*") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestRenderLogX(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, []Series{
		{Name: "s", X: []float64{1, 10, 100}, Y: []float64{1, 2, 3}},
	}, Options{Width: 21, Height: 5, LogX: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "10^0") || !strings.Contains(out, "10^2") {
		t.Fatalf("log ticks missing:\n%s", out)
	}
	// With LogX the three decades are equally spaced: the middle point
	// lands in the middle column.
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if i := strings.Index(l, "|"); i >= 0 {
			row := l[i+1:]
			if len(row) > 10 && row[10] == '*' {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("mid-decade point not centered:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, nil, Options{}); err == nil {
		t.Fatal("empty series accepted")
	}
	if err := Render(&buf, []Series{{Name: "s"}}, Options{}); err == nil {
		t.Fatal("pointless series accepted")
	}
	if err := Render(&buf, []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{1}}}, Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := Render(&buf, []Series{{Name: "s", X: []float64{-1}, Y: []float64{1}}}, Options{LogX: true}); err == nil {
		t.Fatal("non-positive x with LogX accepted")
	}
	if err := Render(&buf, []Series{{Name: "s", X: []float64{math.NaN()}, Y: []float64{1}}}, Options{}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// A single point (zero x/y span) must render without division by zero.
	var buf bytes.Buffer
	err := Render(&buf, []Series{{Name: "pt", X: []float64{5}, Y: []float64{5}}},
		Options{Width: 10, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatalf("point not drawn:\n%s", buf.String())
	}
}

func TestCompact(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		1234:    "1.23e+03",
		0.001:   "1.0e-03",
		-2.25:   "-2.25",
		1000000: "1.0e+06",
	}
	for in, want := range cases {
		if got := compact(in); got != want {
			t.Errorf("compact(%v) = %q, want %q", in, got, want)
		}
	}
}
