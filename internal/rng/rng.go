// Package rng provides a small, deterministic pseudo-random toolkit used by
// workload generators and by the edge-permutation step of the sweeping
// algorithm. All generators are seeded explicitly so every experiment in the
// repository is reproducible bit-for-bit.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; OOPSLA 2014): a tiny,
// fast, well-distributed 64-bit generator whose entire state is one word,
// which makes it trivial to fork independent streams for parallel workers.
package rng

import "math"

// Source is a deterministic 64-bit pseudo-random generator based on
// SplitMix64. The zero value is a valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork returns a new, statistically independent Source derived from s.
// Forking advances s.
func (s *Source) Fork() *Source {
	return &Source{state: s.Uint64()}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice of ints.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the supplied swap
// function (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normally distributed float64 using the
// Box–Muller transform.
func (s *Source) NormFloat64() float64 {
	// Avoid u1 == 0, for which Log diverges.
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Zipf samples from a bounded Zipf distribution over {0, ..., n-1} with
// exponent alpha > 0: P(k) ∝ 1/(k+1)^alpha. It precomputes the cumulative
// distribution at construction time, so sampling is O(log n).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf returns a Zipf sampler over n ranks with the given exponent.
// It panics if n <= 0 or alpha <= 0.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with non-positive n")
	}
	if alpha <= 0 {
		panic("rng: NewZipf called with non-positive alpha")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -alpha)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N()) with Zipfian probabilities (rank 0 is the
// most frequent).
func (z *Zipf) Sample() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
