package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Fork()
	// The child must not replay the parent's stream.
	p0 := parent.Uint64()
	c0 := child.Uint64()
	if p0 == c0 {
		t.Fatalf("fork replays parent stream: %d", p0)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(21)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(New(1), 50, 1.1)
	if z.N() != 50 {
		t.Fatalf("N = %d, want 50", z.N())
	}
	for i := 0; i < 10000; i++ {
		k := z.Sample()
		if k < 0 || k >= 50 {
			t.Fatalf("Zipf sample %d out of range", k)
		}
	}
}

func TestZipfMonotoneFrequencies(t *testing.T) {
	z := NewZipf(New(2), 10, 1.5)
	counts := make([]int, 10)
	for i := 0; i < 200000; i++ {
		counts[z.Sample()]++
	}
	// Rank 0 must dominate rank 5, rank 5 must dominate rank 9; exact
	// monotonicity between adjacent low-probability ranks is too noisy
	// to assert.
	if counts[0] <= counts[5] || counts[5] <= counts[9] {
		t.Fatalf("Zipf counts not decreasing: %v", counts)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n     int
		alpha float64
	}{{0, 1}, {-1, 1}, {10, 0}, {10, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.alpha)
				}
			}()
			NewZipf(New(1), tc.n, tc.alpha)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(New(1), 100000, 1.1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Sample()
	}
	_ = sink
}
