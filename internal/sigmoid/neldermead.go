// Package sigmoid implements the coarse-grained-clustering predictive model
// of Section V: the sigmoid curve
//
//	y = a / (1 + exp(-k·(log x − b))) + c
//
// that the paper fits to the normalized cluster-count-versus-level curves
// (Fig. 2(2)), together with a dependency-free Nelder–Mead simplex optimizer
// used to fit it by least squares.
package sigmoid

import (
	"errors"
	"math"
)

// NelderMeadOptions tunes the downhill-simplex search.
type NelderMeadOptions struct {
	// MaxIter bounds the number of simplex iterations (default 2000).
	MaxIter int
	// Tol terminates when the simplex's function-value spread falls below
	// it (default 1e-10).
	Tol float64
	// Step is the initial simplex displacement per coordinate
	// (default 0.1, or 10% of the coordinate when larger).
	Step float64
}

func (o *NelderMeadOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Step <= 0 {
		o.Step = 0.1
	}
}

// NelderMead minimizes f starting from x0 using the downhill simplex method
// (Nelder & Mead 1965) with standard coefficients (reflection 1, expansion
// 2, contraction 0.5, shrink 0.5). It returns the best point found and its
// value. An error is returned for an empty starting point.
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, 0, errors.New("sigmoid: empty starting point")
	}
	opts.defaults()

	// Build the initial simplex.
	simplex := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range simplex {
		pt := append([]float64(nil), x0...)
		if i > 0 {
			d := opts.Step
			if s := math.Abs(pt[i-1]) * opts.Step; s > d {
				d = s
			}
			pt[i-1] += d
		}
		simplex[i] = pt
		vals[i] = f(pt)
	}

	centroid := make([]float64, n)
	trial := make([]float64, n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Order: find best, worst, second-worst.
		best, worst := 0, 0
		for i := 1; i <= n; i++ {
			if vals[i] < vals[best] {
				best = i
			}
			if vals[i] > vals[worst] {
				worst = i
			}
		}
		if vals[worst]-vals[best] < opts.Tol {
			break
		}
		second := best
		for i := 0; i <= n; i++ {
			if i != worst && vals[i] > vals[second] {
				second = i
			}
		}

		// Centroid of all but the worst.
		for j := 0; j < n; j++ {
			centroid[j] = 0
		}
		for i := 0; i <= n; i++ {
			if i == worst {
				continue
			}
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i][j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}

		eval := func(coef float64) float64 {
			for j := 0; j < n; j++ {
				trial[j] = centroid[j] + coef*(centroid[j]-simplex[worst][j])
			}
			return f(trial)
		}

		// Reflection.
		fr := eval(1)
		switch {
		case fr < vals[best]:
			// Expansion.
			fe := eval(2)
			if fe < fr {
				copyPoint(simplex[worst], centroid, 2)
				vals[worst] = fe
			} else {
				copyPoint(simplex[worst], centroid, 1)
				vals[worst] = fr
			}
		case fr < vals[second]:
			copyPoint(simplex[worst], centroid, 1)
			vals[worst] = fr
		default:
			// Contraction.
			fc := eval(-0.5)
			if fc < vals[worst] {
				copyPoint(simplex[worst], centroid, -0.5)
				vals[worst] = fc
			} else {
				// Shrink toward the best vertex.
				for i := 0; i <= n; i++ {
					if i == best {
						continue
					}
					for j := 0; j < n; j++ {
						simplex[i][j] = simplex[best][j] + 0.5*(simplex[i][j]-simplex[best][j])
					}
					vals[i] = f(simplex[i])
				}
			}
		}
	}

	best := 0
	for i := 1; i <= n; i++ {
		if vals[i] < vals[best] {
			best = i
		}
	}
	return append([]float64(nil), simplex[best]...), vals[best], nil
}

// copyPoint writes centroid + coef·(centroid − worstBefore) into dst, where
// dst still holds worstBefore on entry.
func copyPoint(dst, centroid []float64, coef float64) {
	for j := range dst {
		dst[j] = centroid[j] + coef*(centroid[j]-dst[j])
	}
}
