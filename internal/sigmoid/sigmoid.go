package sigmoid

import (
	"errors"
	"math"
)

// Model is the paper's sigmoid y = a/(1+exp(-k(log x − b))) + c. The
// Fig. 2(2) example instance uses a = -1, b = 0.48, c = 1, k = 10 on
// axis-normalized data.
type Model struct {
	A, B, C, K float64
}

// PaperExampleModel returns the instance quoted in Section V, which the
// paper reports agreeing well with the α = 0.0005 and 0.001 curves.
func PaperExampleModel() Model {
	return Model{A: -1, B: 0.48, C: 1, K: 10}
}

// Eval evaluates the model at x > 0.
func (m Model) Eval(x float64) float64 {
	return m.A/(1+math.Exp(-m.K*(math.Log(x)-m.B))) + m.C
}

// SSE returns the sum of squared residuals of the model on the data.
func (m Model) SSE(xs, ys []float64) float64 {
	var s float64
	for i := range xs {
		d := m.Eval(xs[i]) - ys[i]
		s += d * d
	}
	return s
}

// RMSE returns the root-mean-square error of the model on the data.
func (m Model) RMSE(xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return math.Sqrt(m.SSE(xs, ys) / float64(len(xs)))
}

// Fit least-squares-fits the model to (xs, ys) with xs > 0, starting the
// simplex from guess. It returns the fitted model and its SSE.
func Fit(xs, ys []float64, guess Model) (Model, float64, error) {
	if len(xs) != len(ys) {
		return Model{}, 0, errors.New("sigmoid: xs and ys lengths differ")
	}
	if len(xs) < 4 {
		return Model{}, 0, errors.New("sigmoid: need at least 4 points for 4 parameters")
	}
	for _, x := range xs {
		if x <= 0 {
			return Model{}, 0, errors.New("sigmoid: x values must be positive (model is in log x)")
		}
	}
	loss := func(p []float64) float64 {
		return Model{A: p[0], B: p[1], C: p[2], K: p[3]}.SSE(xs, ys)
	}
	p0 := []float64{guess.A, guess.B, guess.C, guess.K}
	best, sse, err := NelderMead(loss, p0, NelderMeadOptions{MaxIter: 4000})
	if err != nil {
		return Model{}, 0, err
	}
	// One restart from the result often escapes a mediocre local basin.
	best2, sse2, err := NelderMead(loss, best, NelderMeadOptions{MaxIter: 4000, Step: 0.02})
	if err == nil && sse2 < sse {
		best, sse = best2, sse2
	}
	return Model{A: best[0], B: best[1], C: best[2], K: best[3]}, sse, nil
}

// GuessFromData produces a data-driven starting point: c near the maximum,
// a spanning down to the minimum, b at the log-x midpoint, and a moderate
// slope. It works for the decreasing curves of Fig. 2(2) as well as
// increasing sigmoids.
func GuessFromData(xs, ys []float64) Model {
	if len(xs) == 0 {
		return PaperExampleModel()
	}
	minY, maxY := ys[0], ys[0]
	minLX, maxLX := math.Log(xs[0]), math.Log(xs[0])
	first, last := ys[0], ys[len(ys)-1]
	for i := range xs {
		if ys[i] < minY {
			minY = ys[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
		lx := math.Log(xs[i])
		if lx < minLX {
			minLX = lx
		}
		if lx > maxLX {
			maxLX = lx
		}
	}
	span := maxY - minY
	if span == 0 {
		span = 1
	}
	m := Model{B: (minLX + maxLX) / 2, K: 10 / math.Max(1e-9, maxLX-minLX)}
	if first > last { // decreasing curve: a < 0, c at the top
		m.A, m.C = -span, maxY
	} else {
		m.A, m.C = span, minY
	}
	return m
}

// Normalize rescales a series to [0, 1] on both axes as the paper does for
// Fig. 2(2): xs are positive level identifiers rescaled so that log x spans
// [0, 1] after exponentiation (i.e. the returned xs are exp of the
// normalized log), and ys are min-max normalized. The returned slices are
// fresh.
func Normalize(xs, ys []float64) (nx, ny []float64) {
	nx = make([]float64, len(xs))
	ny = make([]float64, len(ys))
	if len(xs) == 0 {
		return nx, ny
	}
	minLX, maxLX := math.Log(xs[0]), math.Log(xs[0])
	for _, x := range xs {
		lx := math.Log(x)
		if lx < minLX {
			minLX = lx
		}
		if lx > maxLX {
			maxLX = lx
		}
	}
	spanLX := maxLX - minLX
	if spanLX == 0 {
		spanLX = 1
	}
	for i, x := range xs {
		nx[i] = math.Exp((math.Log(x) - minLX) / spanLX)
	}
	minY, maxY := ys[0], ys[0]
	for _, y := range ys {
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	spanY := maxY - minY
	if spanY == 0 {
		spanY = 1
	}
	for i, y := range ys {
		ny[i] = (y - minY) / spanY
	}
	return nx, ny
}
