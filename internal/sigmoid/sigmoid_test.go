package sigmoid

import (
	"math"
	"testing"

	"linkclust/internal/rng"
)

func TestNelderMeadQuadratic(t *testing.T) {
	// min (x-3)^2 + (y+1)^2.
	f := func(p []float64) float64 {
		return (p[0]-3)*(p[0]-3) + (p[1]+1)*(p[1]+1)
	}
	x, v, err := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+1) > 1e-4 {
		t.Fatalf("minimum at %v, want (3,-1)", x)
	}
	if v > 1e-8 {
		t.Fatalf("value %v not near zero", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(p []float64) float64 {
		a := 1 - p[0]
		b := p[1] - p[0]*p[0]
		return a*a + 100*b*b
	}
	x, _, err := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 20000, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum at %v, want (1,1)", x)
	}
}

func TestNelderMeadEmptyPoint(t *testing.T) {
	if _, _, err := NelderMead(func([]float64) float64 { return 0 }, nil, NelderMeadOptions{}); err == nil {
		t.Fatal("empty starting point accepted")
	}
}

func TestModelEval(t *testing.T) {
	m := PaperExampleModel() // a=-1, b=0.48, c=1, k=10
	// At log x = b the sigmoid term is a/2: y = 1 - 0.5.
	x := math.Exp(0.48)
	if y := m.Eval(x); math.Abs(y-0.5) > 1e-12 {
		t.Fatalf("Eval at midpoint = %v, want 0.5", y)
	}
	// Far left: term -> 0, y -> c = 1. Far right: y -> c + a = 0.
	if y := m.Eval(1e-6); math.Abs(y-1) > 1e-3 {
		t.Fatalf("left asymptote %v, want 1", y)
	}
	if y := m.Eval(1e6); math.Abs(y) > 1e-3 {
		t.Fatalf("right asymptote %v, want 0", y)
	}
}

func TestFitRecoversKnownModel(t *testing.T) {
	truth := Model{A: -1, B: 0.5, C: 1, K: 8}
	src := rng.New(1)
	var xs, ys []float64
	for i := 1; i <= 60; i++ {
		x := float64(i) / 20 // x in (0, 3]
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x)+0.002*src.NormFloat64())
	}
	m, sse, err := Fit(xs, ys, GuessFromData(xs, ys))
	if err != nil {
		t.Fatal(err)
	}
	if sse/float64(len(xs)) > 1e-4 {
		t.Fatalf("fit SSE %v too large", sse)
	}
	// Predictions must track the truth; parameters may trade off.
	for _, x := range []float64{0.1, 0.5, 1, 2, 3} {
		if d := math.Abs(m.Eval(x) - truth.Eval(x)); d > 0.02 {
			t.Fatalf("prediction at %v off by %v", x, d)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, _, err := Fit([]float64{1, 2}, []float64{1}, Model{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := Fit([]float64{1, 2, 3}, []float64{1, 2, 3}, Model{}); err == nil {
		t.Fatal("too few points accepted")
	}
	if _, _, err := Fit([]float64{1, 2, -3, 4}, []float64{1, 2, 3, 4}, Model{}); err == nil {
		t.Fatal("non-positive x accepted")
	}
}

func TestGuessFromDataDirection(t *testing.T) {
	xs := []float64{0.1, 0.5, 1, 2}
	dec := GuessFromData(xs, []float64{1, 0.9, 0.3, 0})
	if dec.A >= 0 {
		t.Fatalf("decreasing data should give a < 0, got %v", dec.A)
	}
	inc := GuessFromData(xs, []float64{0, 0.3, 0.9, 1})
	if inc.A <= 0 {
		t.Fatalf("increasing data should give a > 0, got %v", inc.A)
	}
	if m := GuessFromData(nil, nil); m != PaperExampleModel() {
		t.Fatal("empty data should fall back to the paper model")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 10, 100}
	ys := []float64{50, 30, 10}
	nx, ny := Normalize(xs, ys)
	// log-normalized x: exp of 0, 0.5, 1.
	want := []float64{1, math.Exp(0.5), math.E}
	for i := range nx {
		if math.Abs(nx[i]-want[i]) > 1e-12 {
			t.Fatalf("nx = %v, want %v", nx, want)
		}
	}
	if ny[0] != 1 || ny[2] != 0 || math.Abs(ny[1]-0.5) > 1e-12 {
		t.Fatalf("ny = %v", ny)
	}
	// Degenerate inputs must not divide by zero.
	nx, ny = Normalize([]float64{5, 5}, []float64{2, 2})
	for i := range nx {
		if math.IsNaN(nx[i]) || math.IsNaN(ny[i]) {
			t.Fatal("NaN from constant series")
		}
	}
	nx, ny = Normalize(nil, nil)
	if len(nx) != 0 || len(ny) != 0 {
		t.Fatal("empty normalize not empty")
	}
}

func TestRMSE(t *testing.T) {
	m := Model{A: 0, B: 0, C: 2, K: 1} // constant y = 2
	xs := []float64{1, 2, 3}
	ys := []float64{2, 2, 5}
	if got := m.RMSE(xs, ys); math.Abs(got-math.Sqrt(3)) > 1e-12 {
		t.Fatalf("RMSE = %v, want sqrt(3)", got)
	}
	if m.RMSE(nil, nil) != 0 {
		t.Fatal("empty RMSE not 0")
	}
}
