//go:build !unix

package spill

import "os"

// mapFile on platforms without syscall.Mmap: always fall back to the
// sequential-read path.
func mapFile(f *os.File, size int) ([]byte, bool, error) { return nil, false, nil }

func unmap(data []byte) error { return nil }
