//go:build unix

package spill

import (
	"os"
	"syscall"
)

// mapFile maps the whole file read-only. A mapping failure is not an error:
// the caller falls back to a sequential read (mapped=false, data=nil).
func mapFile(f *os.File, size int) (data []byte, mapped bool, err error) {
	if size <= 0 {
		return nil, false, nil
	}
	data, merr := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if merr != nil {
		return nil, false, nil
	}
	return data, true, nil
}

func unmap(data []byte) error { return syscall.Munmap(data) }
