// Package spill is the disk-backed bucket store of the out-of-core sweep:
// one file per non-empty similarity bucket, filled through a bounded
// write-behind writer pool during the partition scatter and read back —
// mmap'd where the platform allows, buffered otherwise — by the sorting
// producer that feeds the streaming sweep engine.
//
// The store is deliberately ignorant of pair semantics: callers append
// opaque, self-delimiting records (internal/core owns the encoding) and get
// the concatenated payload back verbatim. What the store does own is
// integrity and lifecycle: every bucket file carries a checksummed header
// written at finalization, readers validate magic, version, bucket id,
// length, and CRC before handing out a byte, and Remove deletes the store's
// private directory on every exit path of its caller.
//
// Concurrency model: Append may be called from any number of goroutines.
// Each bucket accumulates records in a small buffer under a per-bucket
// lock; full buffers are handed to a bounded task channel consumed by the
// writer pool, so scatter workers never block on disk unless the pool is
// more than a block behind. Within one bucket, file appends are serialized
// by a second per-bucket lock and the CRC is computed in file-write order —
// record order inside a bucket is arbitrary (the consumer re-sorts every
// bucket with a total-order comparator), so the interleaving is harmless.
// The first error sticks: subsequent writes become no-ops and FinishWrites
// reports it.
package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"linkclust/internal/fault"
)

// Typed failure classes, matchable with errors.Is through whatever context
// wrapping the store adds.
var (
	// ErrWriteFault is the write-side failure surfaced when a block or
	// header write fails (or the fault.SpillWrite point fires, simulating
	// ENOSPC). The caller's pair list is still intact when it sees this —
	// nothing was consumed yet — so it may fall back to an in-memory path.
	ErrWriteFault = errors.New("spill: write failed")
	// ErrChecksum marks a bucket whose payload does not match its header's
	// CRC (or whose read was failed by the fault.SpillRead point).
	ErrChecksum = errors.New("spill: bucket checksum mismatch")
	// ErrTruncated marks a bucket file shorter than its header claims.
	ErrTruncated = errors.New("spill: bucket file truncated")
	// ErrFormat marks a bucket file with a bad magic, version, or bucket id.
	ErrFormat = errors.New("spill: bad bucket header")
	// ErrAborted is the sticky error installed by Abort.
	ErrAborted = errors.New("spill: store aborted")
)

// Bucket file header: magic, version, bucket id, pair count, payload byte
// length, and the payload's CRC32 (IEEE), all little-endian. Written once
// at FinishWrites over the zero placeholder laid down at creation.
const (
	bucketMagic   = "LCSB"
	formatVersion = 1
	headerSize    = 32
)

var crcTable = crc32.IEEETable

// Options configures a Store. The zero value is usable.
type Options struct {
	// Dir is the parent directory for the store's private spill directory;
	// empty means os.TempDir().
	Dir string
	// Writers is the write-behind pool size; values below 1 default to 2 —
	// spill throughput is disk-bound, not CPU-bound, so the pool stays
	// small regardless of the sweep's worker count.
	Writers int
	// BlockBytes is the per-bucket buffer size that triggers a handoff to
	// the writer pool; values below 1 default to 256 KiB.
	BlockBytes int
}

// Store is one out-of-core run's bucket file set. Create with NewStore,
// fill with Append, seal with FinishWrites, read with OpenBucket, and
// always Remove when done.
type Store struct {
	dir     string
	block   int
	buckets map[int]*bucketFile

	tasks chan writeTask
	wg    sync.WaitGroup

	errMu sync.Mutex
	err   error

	bytes atomic.Int64
}

type bucketFile struct {
	id int
	f  *os.File

	// mu guards the accumulation buffer and pair count (Append side).
	mu    sync.Mutex
	buf   []byte
	pairs int64

	// wmu serializes file appends and the running CRC (writer-pool side).
	wmu     sync.Mutex
	crc     uint32
	payload int64
}

// NewStore creates a fresh private directory under opt.Dir and one file per
// id in bucketIDs (the caller's histogram already knows the non-empty
// buckets). On any creation error the partial directory is removed before
// returning.
func NewStore(bucketIDs []int, opt Options) (*Store, error) {
	parent := opt.Dir
	if parent == "" {
		parent = os.TempDir()
	}
	dir, err := os.MkdirTemp(parent, "linkclust-spill-")
	if err != nil {
		return nil, fmt.Errorf("spill: creating spill directory: %w", err)
	}
	writers := opt.Writers
	if writers < 1 {
		writers = 2
	}
	block := opt.BlockBytes
	if block < 1 {
		block = 256 << 10
	}
	s := &Store{
		dir:     dir,
		block:   block,
		buckets: make(map[int]*bucketFile, len(bucketIDs)),
		tasks:   make(chan writeTask, 2*writers),
	}
	var zero [headerSize]byte
	for _, id := range bucketIDs {
		f, err := os.Create(s.path(id))
		if err == nil {
			_, err = f.Write(zero[:]) // header placeholder, finalized later
		}
		if err != nil {
			for _, b := range s.buckets {
				b.f.Close()
			}
			os.RemoveAll(dir)
			return nil, fmt.Errorf("spill: creating bucket %d: %w", id, err)
		}
		s.buckets[id] = &bucketFile{id: id, f: f}
	}
	for t := 0; t < writers; t++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for task := range s.tasks {
				s.writeBlock(task.b, task.block)
			}
		}()
	}
	return s, nil
}

type writeTask struct {
	b     *bucketFile
	block []byte
}

func (s *Store) path(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("bucket-%05x.lcsb", id))
}

// Dir returns the store's private directory (for tests and diagnostics).
func (s *Store) Dir() string { return s.dir }

// BytesWritten returns the bytes written to disk so far (payload blocks
// plus finalized headers). After a successful FinishWrites the value is a
// pure function of the appended records, hence worker-invariant.
func (s *Store) BytesWritten() int64 { return s.bytes.Load() }

// Err returns the store's sticky first error, if any.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *Store) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Abort installs ErrAborted so in-flight and future writes become no-ops;
// the caller still runs FinishWrites (to join the pool) and Remove. Used on
// cancellation, where the data will be discarded anyway.
func (s *Store) Abort() { s.fail(ErrAborted) }

// Append adds one encoded record to bucket id. Safe for concurrent use; may
// block while the writer pool is a full task queue behind. Returns the
// sticky store error, under which appends are discarded.
func (s *Store) Append(id int, rec []byte) error {
	if err := s.Err(); err != nil {
		return err
	}
	b := s.buckets[id]
	if b == nil {
		err := fmt.Errorf("spill: append to undeclared bucket %d", id)
		s.fail(err)
		return err
	}
	b.mu.Lock()
	if b.buf == nil {
		b.buf = make([]byte, 0, s.block+len(rec))
	}
	b.buf = append(b.buf, rec...)
	b.pairs++
	var blk []byte
	if len(b.buf) >= s.block {
		blk = b.buf
		b.buf = nil
	}
	b.mu.Unlock()
	if blk != nil {
		s.tasks <- writeTask{b: b, block: blk}
	}
	return nil
}

// writeBlock appends one block to its bucket file, maintaining the running
// CRC in file-write order. The fault.SpillWrite point fires once per block;
// a firing hit drops the block and fails the store with ErrWriteFault, the
// deterministic stand-in for ENOSPC.
func (s *Store) writeBlock(b *bucketFile, blk []byte) {
	if s.Err() != nil {
		return // draining after a failure; discard
	}
	b.wmu.Lock()
	defer b.wmu.Unlock()
	if fault.Hit(fault.SpillWrite) {
		s.fail(fmt.Errorf("bucket %d block write: %w", b.id, ErrWriteFault))
		return
	}
	n, err := b.f.Write(blk)
	if n > 0 {
		b.crc = crc32.Update(b.crc, crcTable, blk[:n])
		b.payload += int64(n)
		s.bytes.Add(int64(n))
	}
	switch {
	case err != nil:
		s.fail(fmt.Errorf("bucket %d block write: %v: %w", b.id, err, ErrWriteFault))
	case n != len(blk):
		s.fail(fmt.Errorf("bucket %d short block write (%d of %d): %w", b.id, n, len(blk), ErrWriteFault))
	}
}

// FinishWrites flushes every residual buffer, joins the writer pool,
// finalizes each bucket's checksummed header, and closes the write handles.
// It must be called exactly once, even after an error or Abort — it is what
// guarantees the pool is gone. It returns the store's first error.
func (s *Store) FinishWrites() error {
	if s.Err() == nil {
		for _, b := range s.buckets {
			b.mu.Lock()
			blk := b.buf
			b.buf = nil
			b.mu.Unlock()
			if len(blk) > 0 {
				s.tasks <- writeTask{b: b, block: blk}
			}
		}
	}
	close(s.tasks)
	s.wg.Wait()
	for _, b := range s.buckets {
		if s.Err() == nil {
			var hdr [headerSize]byte
			copy(hdr[0:], bucketMagic)
			binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
			binary.LittleEndian.PutUint32(hdr[8:], uint32(b.id))
			binary.LittleEndian.PutUint64(hdr[12:], uint64(b.pairs))
			binary.LittleEndian.PutUint64(hdr[20:], uint64(b.payload))
			binary.LittleEndian.PutUint32(hdr[28:], b.crc)
			if _, err := b.f.WriteAt(hdr[:], 0); err != nil {
				s.fail(fmt.Errorf("bucket %d header write: %v: %w", b.id, err, ErrWriteFault))
			} else {
				s.bytes.Add(headerSize)
			}
		}
		b.f.Close()
	}
	return s.Err()
}

// Bucket is one opened bucket's validated payload. Close releases the
// mapping (when mmap'd); the payload must not be used after Close.
type Bucket struct {
	// Payload is the concatenated record bytes, CRC-verified.
	Payload []byte
	// Pairs is the record count the writer declared in the header.
	Pairs int

	mapped []byte
	f      *os.File
}

// OpenBucket opens, validates, and returns bucket id. The file is mmap'd
// read-only where the platform supports it and read sequentially otherwise;
// either way the header's magic, version, bucket id, payload length, and
// CRC are verified before any byte is returned. Callers own Close.
func (s *Store) OpenBucket(id int) (bk *Bucket, err error) {
	path := s.path(id)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spill: opening bucket %d: %w", id, err)
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("spill: bucket %d: %w", id, err)
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("bucket %d: %d-byte file: %w", id, st.Size(), ErrTruncated)
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("spill: bucket %d header: %w", id, err)
	}
	if string(hdr[0:4]) != bucketMagic {
		return nil, fmt.Errorf("bucket %d: magic %q: %w", id, hdr[0:4], ErrFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != formatVersion {
		return nil, fmt.Errorf("bucket %d: version %d: %w", id, v, ErrFormat)
	}
	if got := binary.LittleEndian.Uint32(hdr[8:]); got != uint32(id) {
		return nil, fmt.Errorf("bucket %d: header claims bucket %d: %w", id, got, ErrFormat)
	}
	pairs := binary.LittleEndian.Uint64(hdr[12:])
	payloadLen := binary.LittleEndian.Uint64(hdr[20:])
	if pairs > 1<<31 || payloadLen > 1<<40 {
		return nil, fmt.Errorf("bucket %d: implausible header (pairs=%d payload=%d): %w", id, pairs, payloadLen, ErrFormat)
	}
	if st.Size() != headerSize+int64(payloadLen) {
		return nil, fmt.Errorf("bucket %d: %d bytes on disk, header claims %d: %w",
			id, st.Size(), headerSize+int64(payloadLen), ErrTruncated)
	}

	data, mapped, mmapErr := mapFile(f, int(st.Size()))
	if mmapErr != nil || data == nil {
		// No mapping on this platform (or it failed): fall back to one
		// sequential read.
		data = make([]byte, st.Size())
		if _, err := f.ReadAt(data, 0); err != nil {
			return nil, fmt.Errorf("spill: bucket %d read: %w", id, err)
		}
		mapped = false
	}
	payload := data[headerSize:]
	release := func() {
		if mapped {
			unmap(data)
		}
	}
	if crc := crc32.Checksum(payload, crcTable); crc != binary.LittleEndian.Uint32(hdr[28:]) {
		release()
		return nil, fmt.Errorf("bucket %d: crc %08x, header %08x: %w",
			id, crc, binary.LittleEndian.Uint32(hdr[28:]), ErrChecksum)
	}
	if fault.Hit(fault.SpillRead) {
		release()
		return nil, fmt.Errorf("bucket %d: injected corruption: %w", id, ErrChecksum)
	}
	bk = &Bucket{Payload: payload, Pairs: int(pairs), f: f}
	if mapped {
		bk.mapped = data
	} else {
		f.Close()
		bk.f = nil
	}
	return bk, nil
}

// Close releases the bucket's mapping and file handle. Idempotent.
func (b *Bucket) Close() error {
	var err error
	if b.mapped != nil {
		err = unmap(b.mapped)
		b.mapped = nil
	}
	if b.f != nil {
		if cerr := b.f.Close(); err == nil {
			err = cerr
		}
		b.f = nil
	}
	b.Payload = nil
	return err
}

// Remove deletes the store's private directory and everything in it.
// Idempotent; safe after FinishWrites on any path (mmap'd readers keep
// their pages alive through the unlink on unixes).
func (s *Store) Remove() error {
	return os.RemoveAll(s.dir)
}
