package spill

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"linkclust/internal/fault"
)

// roundTrip writes the given records through a store and reads every bucket
// back, returning the concatenated payload per bucket.
func roundTrip(t *testing.T, recs map[int][][]byte, opt Options) map[int][]byte {
	t.Helper()
	var ids []int
	for id := range recs {
		ids = append(ids, id)
	}
	s, err := NewStore(ids, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Remove()
	for id, rs := range recs {
		for _, r := range rs {
			if err := s.Append(id, r); err != nil {
				t.Fatalf("append bucket %d: %v", id, err)
			}
		}
	}
	if err := s.FinishWrites(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	out := make(map[int][]byte)
	for id, rs := range recs {
		bk, err := s.OpenBucket(id)
		if err != nil {
			t.Fatalf("open bucket %d: %v", id, err)
		}
		if bk.Pairs != len(rs) {
			t.Fatalf("bucket %d header claims %d records, wrote %d", id, bk.Pairs, len(rs))
		}
		out[id] = append([]byte(nil), bk.Payload...)
		bk.Close()
	}
	return out
}

// TestStoreRoundTrip: multi-bucket write/read with block handoffs (tiny
// BlockBytes forces many write-behind tasks) must return every record of
// every bucket exactly once. Block order within a bucket is unspecified —
// pool workers race on distinct blocks of one bucket — which is the
// documented contract: consumers re-sort buckets with a total order.
func TestStoreRoundTrip(t *testing.T) {
	recs := map[int][][]byte{}
	for id := 0; id < 7; id++ {
		for j := 0; j < 50+id; j++ {
			recs[id] = append(recs[id], []byte(fmt.Sprintf("rec-%d-%04d|", id, j)))
		}
	}
	got := roundTrip(t, recs, Options{Dir: t.TempDir(), BlockBytes: 64})
	for id, rs := range recs {
		gotSet := strings.Split(strings.TrimSuffix(string(got[id]), "|"), "|")
		wantSet := make([]string, len(rs))
		for i, r := range rs {
			wantSet[i] = strings.TrimSuffix(string(r), "|")
		}
		sort.Strings(gotSet)
		sort.Strings(wantSet)
		if len(gotSet) != len(wantSet) {
			t.Fatalf("bucket %d: %d records back, wrote %d", id, len(gotSet), len(wantSet))
		}
		for i := range wantSet {
			if gotSet[i] != wantSet[i] {
				t.Fatalf("bucket %d record %d: %q vs %q", id, i, gotSet[i], wantSet[i])
			}
		}
	}
}

// TestStoreConcurrentAppends: concurrent appenders to shared buckets must
// lose no record (order within a bucket is unspecified by contract).
func TestStoreConcurrentAppends(t *testing.T) {
	ids := []int{1, 2, 3}
	s, err := NewStore(ids, Options{Dir: t.TempDir(), BlockBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Remove()
	const appenders, per = 8, 200
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				rec := []byte(fmt.Sprintf("%02d-%04d;", a, j))
				if err := s.Append(ids[j%len(ids)], rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	if err := s.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, id := range ids {
		bk, err := s.OpenBucket(id)
		if err != nil {
			t.Fatal(err)
		}
		total += bk.Pairs
		if len(bk.Payload) != bk.Pairs*8 {
			t.Fatalf("bucket %d: %d bytes for %d fixed-width records", id, len(bk.Payload), bk.Pairs)
		}
		bk.Close()
	}
	if total != appenders*per {
		t.Fatalf("read back %d records, wrote %d", total, appenders*per)
	}
}

// corruptStore writes one bucket and returns the store plus the bucket
// file's path for corruption tests.
func corruptStore(t *testing.T) (*Store, string) {
	t.Helper()
	s, err := NewStore([]int{5}, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Remove() })
	for j := 0; j < 32; j++ {
		if err := s.Append(5, []byte(fmt.Sprintf("payload-%08d", j))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	return s, s.path(5)
}

// TestOpenBucketDetectsCorruption: a flipped payload byte must fail with
// ErrChecksum; a truncated file with ErrTruncated; a bad magic with
// ErrFormat.
func TestOpenBucketDetectsCorruption(t *testing.T) {
	s, path := corruptStore(t)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	flipped := append([]byte(nil), orig...)
	flipped[headerSize+10] ^= 0xff
	os.WriteFile(path, flipped, 0o644)
	if _, err := s.OpenBucket(5); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped byte: error %v, want ErrChecksum", err)
	}

	restore()
	os.WriteFile(path, orig[:len(orig)-7], 0o644)
	if _, err := s.OpenBucket(5); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: error %v, want ErrTruncated", err)
	}

	restore()
	bad := append([]byte(nil), orig...)
	copy(bad, "XXXX")
	os.WriteFile(path, bad, 0o644)
	if _, err := s.OpenBucket(5); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: error %v, want ErrFormat", err)
	}

	restore()
	if bk, err := s.OpenBucket(5); err != nil {
		t.Fatalf("restored file still rejected: %v", err)
	} else {
		bk.Close()
	}
}

// TestWriteFaultFailsStore: an armed SpillWrite must surface ErrWriteFault
// from FinishWrites and poison subsequent appends.
func TestWriteFaultFailsStore(t *testing.T) {
	defer fault.Reset()
	fault.Arm(fault.SpillWrite, 1, nil)
	s, err := NewStore([]int{0, 1}, Options{Dir: t.TempDir(), BlockBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Remove()
	for j := 0; j < 64; j++ {
		if err := s.Append(j%2, []byte("0123456789abcdef")); err != nil {
			break // sticky error propagated to the appender, as designed
		}
	}
	if err := s.FinishWrites(); !errors.Is(err, ErrWriteFault) {
		t.Fatalf("finish error %v, want ErrWriteFault", err)
	}
}

// TestReadFaultReportsChecksum: an armed SpillRead fails OpenBucket with
// ErrChecksum even though the bytes on disk are sound.
func TestReadFaultReportsChecksum(t *testing.T) {
	defer fault.Reset()
	s, _ := corruptStore(t)
	fault.Arm(fault.SpillRead, 1, nil)
	if _, err := s.OpenBucket(5); !errors.Is(err, ErrChecksum) {
		t.Fatalf("error %v, want injected ErrChecksum", err)
	}
	fault.Reset()
	bk, err := s.OpenBucket(5)
	if err != nil {
		t.Fatalf("disarmed open failed: %v", err)
	}
	bk.Close()
}

// TestAbortAndRemove: Abort makes FinishWrites fast-fail with ErrAborted,
// Remove deletes the directory and is idempotent.
func TestAbortAndRemove(t *testing.T) {
	parent := t.TempDir()
	s, err := NewStore([]int{3}, Options{Dir: parent})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(3, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	s.Abort()
	if err := s.FinishWrites(); !errors.Is(err, ErrAborted) {
		t.Fatalf("finish error %v, want ErrAborted", err)
	}
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(); err != nil {
		t.Fatalf("second Remove: %v", err)
	}
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d entries left after Remove", len(entries))
	}
	if _, err := os.Stat(filepath.Join(parent, "nope")); !os.IsNotExist(err) {
		t.Fatal("sanity: stat of missing path should fail")
	}
}

// TestBytesWrittenAccounting: payload bytes plus one header per bucket.
func TestBytesWrittenAccounting(t *testing.T) {
	recs := map[int][][]byte{
		0: {[]byte("aaaa"), []byte("bbbbbb")},
		9: {[]byte("cc")},
	}
	var ids []int
	var payload int64
	for id, rs := range recs {
		ids = append(ids, id)
		for _, r := range rs {
			payload += int64(len(r))
		}
	}
	s, err := NewStore(ids, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Remove()
	for id, rs := range recs {
		for _, r := range rs {
			if err := s.Append(id, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	want := payload + int64(len(recs))*headerSize
	if got := s.BytesWritten(); got != want {
		t.Fatalf("BytesWritten = %d, want %d", got, want)
	}
}
