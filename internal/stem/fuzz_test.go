package stem

import "testing"

// FuzzPorter asserts the stemmer's total-function contract on arbitrary
// lowercase-letter words: never panic, never emit non-letters, never grow
// the word by more than one byte, and pass through words shorter than three
// letters verbatim.
func FuzzPorter(f *testing.F) {
	for _, seed := range []string{"", "a", "running", "caresses", "yyy", "sses", "ied", "bled", "eee", "relational"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		w := make([]byte, 0, len(raw))
		for i := 0; i < len(raw); i++ {
			w = append(w, 'a'+raw[i]%26)
		}
		in := string(w)
		out := Porter(in)
		if len(out) > len(in)+1 {
			t.Fatalf("Porter(%q) = %q grew too much", in, out)
		}
		if len(in) <= 2 && out != in {
			t.Fatalf("short word changed: %q -> %q", in, out)
		}
		for i := 0; i < len(out); i++ {
			if out[i] < 'a' || out[i] > 'z' {
				t.Fatalf("Porter(%q) = %q contains non-letter", in, out)
			}
		}
	})
}
