// Package stem implements the Porter stemming algorithm (M.F. Porter, "An
// algorithm for suffix stripping", Program 14(3), 1980). The paper's corpus
// pipeline stems every tweet token with nltk's Porter stemmer before building
// the word-association graph; this package is the equivalent substrate.
//
// The implementation follows the original 1980 definition (the variant
// implemented by the classic C and Java reference code), operating on
// lowercase ASCII words. Words shorter than three letters are returned
// unchanged, as in the reference implementation.
package stem

// Porter returns the Porter stem of word. The input is expected to be a
// lowercase ASCII word; bytes outside 'a'..'z' are left untouched and treated
// as consonants.
func Porter(word string) string {
	if len(word) <= 2 {
		return word
	}
	s := newStemmer(word)
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b[:s.k+1])
}

// stemmer holds the working buffer. b[0..k] is the current word.
type stemmer struct {
	b []byte
	k int // index of last letter of current word
	j int // index set by ends(): last letter of the stem before the suffix
}

func newStemmer(word string) *stemmer {
	b := []byte(word)
	return &stemmer{b: b, k: len(b) - 1}
}

// cons reports whether b[i] is a consonant.
func (s *stemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	default:
		return true
	}
}

// m measures the number of consonant-vowel sequences in b[0..j]:
// <C>(VC)^m<V>. This is Porter's m.
func (s *stemmer) m() int {
	n := 0
	i := 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doubleC reports whether b[i-1..i] is a double consonant.
func (s *stemmer) doubleC(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.cons(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant and the final
// consonant is not w, x or y. Used to restore a trailing e (e.g. cav(e),
// lov(e), hop(e)) and in step1b.
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether b[0..k] ends with suffix, and if so sets j to point
// just before the suffix.
func (s *stemmer) ends(suffix string) bool {
	l := len(suffix)
	if l > s.k+1 {
		return false
	}
	if string(s.b[s.k+1-l:s.k+1]) != suffix {
		return false
	}
	s.j = s.k - l
	return true
}

// setTo replaces b[j+1..k] with repl and adjusts k.
func (s *stemmer) setTo(repl string) {
	s.b = append(s.b[:s.j+1], repl...)
	s.k = s.j + len(repl)
}

// r replaces the suffix with repl if m() > 0.
func (s *stemmer) r(repl string) {
	if s.m() > 0 {
		s.setTo(repl)
	}
}

// step1a removes plurals: sses -> ss, ies -> i, ss -> ss, s -> "".
func (s *stemmer) step1a() {
	if s.b[s.k] != 's' {
		return
	}
	switch {
	case s.ends("sses"):
		s.k -= 2
	case s.ends("ies"):
		s.setTo("i")
	case s.b[s.k-1] != 's':
		s.k--
	}
}

// step1b removes -ed and -ing, with cleanup of the exposed stem.
func (s *stemmer) step1b() {
	switch {
	case s.ends("eed"):
		if s.m() > 0 {
			s.k--
		}
		return
	case s.ends("ed"):
		if !s.vowelInStem() {
			return
		}
		s.k = s.j
	case s.ends("ing"):
		if !s.vowelInStem() {
			return
		}
		s.k = s.j
	default:
		return
	}
	// Cleanup after removing -ed/-ing.
	switch {
	case s.ends("at"):
		s.setTo("ate")
	case s.ends("bl"):
		s.setTo("ble")
	case s.ends("iz"):
		s.setTo("ize")
	case s.doubleC(s.k):
		s.k--
		switch s.b[s.k] {
		case 'l', 's', 'z':
			s.k++
		}
	default:
		if s.m() == 1 && s.cvc(s.k) {
			s.j = s.k
			s.setTo("e")
		}
	}
}

// step1c turns terminal y to i when there is another vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.k] = 'i'
	}
}

// step2 maps double suffixes to single ones when m() > 0.
func (s *stemmer) step2() {
	switch s.b[s.k-1] {
	case 'a':
		switch {
		case s.ends("ational"):
			s.r("ate")
		case s.ends("tional"):
			s.r("tion")
		}
	case 'c':
		switch {
		case s.ends("enci"):
			s.r("ence")
		case s.ends("anci"):
			s.r("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.r("ize")
		}
	case 'l':
		switch {
		case s.ends("bli"):
			s.r("ble")
		case s.ends("alli"):
			s.r("al")
		case s.ends("entli"):
			s.r("ent")
		case s.ends("eli"):
			s.r("e")
		case s.ends("ousli"):
			s.r("ous")
		}
	case 'o':
		switch {
		case s.ends("ization"):
			s.r("ize")
		case s.ends("ation"):
			s.r("ate")
		case s.ends("ator"):
			s.r("ate")
		}
	case 's':
		switch {
		case s.ends("alism"):
			s.r("al")
		case s.ends("iveness"):
			s.r("ive")
		case s.ends("fulness"):
			s.r("ful")
		case s.ends("ousness"):
			s.r("ous")
		}
	case 't':
		switch {
		case s.ends("aliti"):
			s.r("al")
		case s.ends("iviti"):
			s.r("ive")
		case s.ends("biliti"):
			s.r("ble")
		}
	case 'g':
		if s.ends("logi") {
			s.r("log")
		}
	}
}

// step3 handles -ic-, -full, -ness and similar when m() > 0.
func (s *stemmer) step3() {
	switch s.b[s.k] {
	case 'e':
		switch {
		case s.ends("icate"):
			s.r("ic")
		case s.ends("ative"):
			s.r("")
		case s.ends("alize"):
			s.r("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.r("ic")
		}
	case 'l':
		switch {
		case s.ends("ical"):
			s.r("ic")
		case s.ends("ful"):
			s.r("")
		}
	case 's':
		if s.ends("ness") {
			s.r("")
		}
	}
}

// step4 strips -ant, -ence and similar when m() > 1.
func (s *stemmer) step4() {
	switch s.b[s.k-1] {
	case 'a':
		if !s.ends("al") {
			return
		}
	case 'c':
		if !s.ends("ance") && !s.ends("ence") {
			return
		}
	case 'e':
		if !s.ends("er") {
			return
		}
	case 'i':
		if !s.ends("ic") {
			return
		}
	case 'l':
		if !s.ends("able") && !s.ends("ible") {
			return
		}
	case 'n':
		if !s.ends("ant") && !s.ends("ement") && !s.ends("ment") && !s.ends("ent") {
			return
		}
	case 'o':
		if s.ends("ion") {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				return
			}
		} else if !s.ends("ou") {
			return
		}
	case 's':
		if !s.ends("ism") {
			return
		}
	case 't':
		if !s.ends("ate") && !s.ends("iti") {
			return
		}
	case 'u':
		if !s.ends("ous") {
			return
		}
	case 'v':
		if !s.ends("ive") {
			return
		}
	case 'z':
		if !s.ends("ize") {
			return
		}
	default:
		return
	}
	if s.m() > 1 {
		s.k = s.j
	}
}

// step5a removes a final -e when m() > 1, or when m() == 1 and the stem does
// not end cvc.
func (s *stemmer) step5a() {
	s.j = s.k
	if s.b[s.k] != 'e' {
		return
	}
	a := s.m()
	if a > 1 || (a == 1 && !s.cvc(s.k-1)) {
		s.k--
	}
}

// step5b changes -ll to -l when m() > 1.
func (s *stemmer) step5b() {
	if s.b[s.k] == 'l' && s.doubleC(s.k) && s.m() > 1 {
		s.k--
	}
}
