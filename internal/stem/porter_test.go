package stem

import (
	"testing"
	"testing/quick"
)

// Golden pairs from Porter's published examples and the reference
// implementation's vocabulary.
var goldenStems = []struct{ in, want string }{
	// Step 1a.
	{"caresses", "caress"},
	{"ponies", "poni"},
	{"ties", "ti"},
	{"caress", "caress"},
	{"cats", "cat"},
	// Step 1b.
	{"feed", "feed"},
	{"agreed", "agre"},
	{"plastered", "plaster"},
	{"bled", "bled"},
	{"motoring", "motor"},
	{"sing", "sing"},
	{"conflated", "conflat"},
	{"troubled", "troubl"},
	{"sized", "size"},
	{"hopping", "hop"},
	{"tanned", "tan"},
	{"falling", "fall"},
	{"hissing", "hiss"},
	{"fizzed", "fizz"},
	{"failing", "fail"},
	{"filing", "file"},
	// Step 1c.
	{"happy", "happi"},
	{"sky", "sky"},
	// Step 2.
	{"relational", "relat"},
	{"conditional", "condit"},
	{"rational", "ration"},
	{"valenci", "valenc"},
	{"hesitanci", "hesit"},
	{"digitizer", "digit"},
	{"conformabli", "conform"},
	{"radicalli", "radic"},
	{"differentli", "differ"},
	{"vileli", "vile"},
	{"analogousli", "analog"},
	{"vietnamization", "vietnam"},
	{"predication", "predic"},
	{"operator", "oper"},
	{"feudalism", "feudal"},
	{"decisiveness", "decis"},
	{"hopefulness", "hope"},
	{"callousness", "callous"},
	{"formaliti", "formal"},
	{"sensitiviti", "sensit"},
	{"sensibiliti", "sensibl"},
	// Step 3.
	{"triplicate", "triplic"},
	{"formative", "form"},
	{"formalize", "formal"},
	{"electriciti", "electr"},
	{"electrical", "electr"},
	{"hopeful", "hope"},
	{"goodness", "good"},
	// Step 4.
	{"revival", "reviv"},
	{"allowance", "allow"},
	{"inference", "infer"},
	{"airliner", "airlin"},
	{"gyroscopic", "gyroscop"},
	{"adjustable", "adjust"},
	{"defensible", "defens"},
	{"irritant", "irrit"},
	{"replacement", "replac"},
	{"adjustment", "adjust"},
	{"dependent", "depend"},
	{"adoption", "adopt"},
	{"homologou", "homolog"},
	{"communism", "commun"},
	{"activate", "activ"},
	{"angulariti", "angular"},
	{"homologous", "homolog"},
	{"effective", "effect"},
	{"bowdlerize", "bowdler"},
	// Step 5.
	{"probate", "probat"},
	{"rate", "rate"},
	{"cease", "ceas"},
	{"controll", "control"},
	{"roll", "roll"},
	// Assorted realistic words.
	{"running", "run"},
	{"runs", "run"},
	{"clustering", "cluster"},
	{"clusters", "cluster"},
	{"computation", "comput"},
	{"computational", "comput"},
	{"networks", "network"},
	{"communities", "commun"},
	{"twitter", "twitter"},
	{"tweets", "tweet"},
	// Short words pass through.
	{"a", "a"},
	{"as", "as"},
	{"is", "is"},
	{"", ""},
}

func TestPorterGolden(t *testing.T) {
	for _, tc := range goldenStems {
		if got := Porter(tc.in); got != tc.want {
			t.Errorf("Porter(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPorterShortWordsUnchanged(t *testing.T) {
	// Porter is deliberately not idempotent (e.g. "agreed" -> "agre" ->
	// "agr"), so we do not assert stability; but words of length <= 2 are
	// always returned verbatim.
	for _, w := range []string{"", "a", "io", "by", "zz"} {
		if got := Porter(w); got != w {
			t.Errorf("Porter(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestPorterNeverGrowsWord(t *testing.T) {
	f := func(raw []byte) bool {
		// Constrain to lowercase letters to match the contract.
		w := make([]byte, 0, len(raw))
		for _, b := range raw {
			w = append(w, 'a'+b%26)
		}
		in := string(w)
		out := Porter(in)
		// Porter can rewrite suffixes (e.g. "bl" -> "ble") so a one-byte
		// growth of intermediate stems is possible, but the final result
		// never exceeds the input length by more than one byte.
		return len(out) <= len(in)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPorterOnlyLowercaseOutput(t *testing.T) {
	f := func(raw []byte) bool {
		w := make([]byte, 0, len(raw))
		for _, b := range raw {
			w = append(w, 'a'+b%26)
		}
		out := Porter(string(w))
		for i := 0; i < len(out); i++ {
			if out[i] < 'a' || out[i] > 'z' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPorterDoesNotPanic(t *testing.T) {
	// Exercise odd inputs: digits, punctuation, mixed content.
	for _, w := range []string{"123", "abc123", "don't", "---", "yyy", "eee", "sss", "ing", "ed", "s"} {
		_ = Porter(w) // must not panic
	}
}

func BenchmarkPorter(b *testing.B) {
	words := []string{"relational", "clustering", "computational", "networks", "hopefulness", "tweets"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Porter(words[i%len(words)])
	}
}
