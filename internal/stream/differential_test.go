package stream

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"linkclust/internal/assoc"
	"linkclust/internal/core"
	"linkclust/internal/corpus"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/planted"
	"linkclust/internal/rng"
)

// streamTestGraphs returns the graph families of the differential matrix:
// random, planted communities, and a word-association network, sized so the
// full arrival × batch × worker matrix stays fast.
func streamTestGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{
		"erdos-renyi": graph.ErdosRenyi(64, 0.12, rng.New(3)),
	}
	pcfg := planted.DefaultConfig()
	pcfg.Nodes = 90
	pcfg.Communities = 4
	bench, err := planted.Generate(pcfg)
	if err != nil {
		t.Fatalf("planted: %v", err)
	}
	out["planted"] = bench.Graph
	ccfg := corpus.DefaultSynthConfig()
	ccfg.Vocab = 120
	ccfg.Docs = 220
	ccfg.Topics = 4
	wg, err := assoc.Build(corpus.Synthesize(ccfg), 0.5, assoc.Options{EdgePermSeed: 42})
	if err != nil {
		t.Fatalf("assoc: %v", err)
	}
	out["word-association"] = wg
	return out
}

// arrivalsOf converts a graph's edge set (in id order) into a replayable
// arrival sequence.
func arrivalsOf(g *graph.Graph) []Arrival {
	out := make([]Arrival, 0, g.NumEdges())
	for _, e := range g.Edges() {
		out = append(out, Arrival{U: int(e.U), V: int(e.V), W: e.Weight})
	}
	return out
}

// requireSameResult asserts bitwise result equality: the merge stream event
// for event (similarities compared by bits), the summary counts, and the
// final partition element-wise.
func requireSameResult(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if len(got.Merges) != len(want.Merges) {
		t.Fatalf("%s: %d merges, want %d", label, len(got.Merges), len(want.Merges))
	}
	for i := range want.Merges {
		gm, wm := got.Merges[i], want.Merges[i]
		if gm.Level != wm.Level || gm.A != wm.A || gm.B != wm.B || gm.Into != wm.Into ||
			math.Float64bits(gm.Sim) != math.Float64bits(wm.Sim) {
			t.Fatalf("%s: merge %d = %+v, want %+v", label, i, gm, wm)
		}
	}
	if got.Levels != want.Levels {
		t.Fatalf("%s: %d levels, want %d", label, got.Levels, want.Levels)
	}
	if got.PairsProcessed != want.PairsProcessed {
		t.Fatalf("%s: %d ops, want %d", label, got.PairsProcessed, want.PairsProcessed)
	}
	ga, wa := got.Chain.Assignments(), want.Chain.Assignments()
	if len(ga) != len(wa) {
		t.Fatalf("%s: %d assignments, want %d", label, len(ga), len(wa))
	}
	for i := range wa {
		if ga[i] != wa[i] {
			t.Fatalf("%s: assignment[%d] = %d, want %d", label, i, ga[i], wa[i])
		}
	}
	if got.NumClusters() != want.NumClusters() {
		t.Fatalf("%s: %d clusters, want %d", label, got.NumClusters(), want.NumClusters())
	}
}

// batchOracle runs the batch pipeline on the prefix graph: the first k
// arrivals of the order replayed into a Builder (identical ids and adjacency
// to the engine's dynamic graph) and clustered serially.
func batchOracle(t *testing.T, n int, arrivals []Arrival, k int) *core.Result {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, a := range arrivals[:k] {
		b.MustAddEdge(a.U, a.V, a.W)
	}
	res, err := core.Cluster(b.Build(nil))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamDifferential is the tentpole's correctness matrix: each family's
// edge set is streamed in 5 shuffled arrival orders × batch sizes {1, 16,
// all} × worker counts {1, 4, 8}, and every Snapshot must equal — bitwise —
// a batch Cluster run on the exact prefix graph.
func TestStreamDifferential(t *testing.T) {
	for name, g := range streamTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := arrivalsOf(g)
			n := g.NumVertices()
			m := len(base)
			for ord := uint64(0); ord < 5; ord++ {
				arrivals := append([]Arrival(nil), base...)
				rng.New(100+ord).Shuffle(len(arrivals), func(i, j int) {
					arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
				})
				oracles := map[int]*core.Result{}
				oracle := func(k int) *core.Result {
					if r, ok := oracles[k]; ok {
						return r
					}
					r := batchOracle(t, n, arrivals, k)
					oracles[k] = r
					return r
				}
				for _, batch := range []int{1, 16, m} {
					// Snapshot at one third, two thirds, and the end,
					// aligned up to batch boundaries.
					points := map[int]bool{}
					for _, p := range []int{m / 3, 2 * m / 3, m} {
						if p > 0 {
							a := ((p + batch - 1) / batch) * batch
							if a > m {
								a = m
							}
							points[a] = true
						}
					}
					points[m] = true
					for _, workers := range []int{1, 4, 8} {
						e, err := New(Options{Workers: workers, MaxVertices: n})
						if err != nil {
							t.Fatal(err)
						}
						for lo := 0; lo < m; lo += batch {
							hi := lo + batch
							if hi > m {
								hi = m
							}
							if err := e.IngestBatch(arrivals[lo:hi]); err != nil {
								t.Fatalf("ord=%d batch=%d T=%d ingest[%d:%d]: %v", ord, batch, workers, lo, hi, err)
							}
							if !points[hi] {
								continue
							}
							res, err := e.Snapshot()
							if err != nil {
								t.Fatalf("ord=%d batch=%d T=%d snapshot@%d: %v", ord, batch, workers, hi, err)
							}
							requireSameResult(t,
								fmt.Sprintf("ord=%d batch=%d T=%d prefix=%d", ord, batch, workers, hi),
								res, oracle(hi))
						}
					}
				}
			}
		})
	}
}

// TestStreamCompactionPolicies pins the trigger behavior at its extremes —
// a never-compacting engine must pay zero compactions and still be exact, an
// always-compacting engine must compact on every snapshot and still be exact
// — plus the duplicate-arrival path (weight overwrites mid-stream).
func TestStreamCompactionPolicies(t *testing.T) {
	g := graph.ErdosRenyi(64, 0.12, rng.New(3))
	arrivals := arrivalsOf(g)
	m := len(arrivals)
	for _, tc := range []struct {
		name    string
		dirty   float64
		wantMin int64
		wantMax int64
	}{
		{"never", 2.0, 0, 0},
		{"always", 1e-12, 1, int64(m)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := obs.New()
			e, err := New(Options{Workers: 4, MaxVertices: g.NumVertices(),
				CompactDirtyFraction: tc.dirty, Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			snaps := 0
			for lo := 0; lo < m; lo += 16 {
				hi := min(lo+16, m)
				if err := e.IngestBatch(arrivals[lo:hi]); err != nil {
					t.Fatal(err)
				}
				res, err := e.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				snaps++
				requireSameResult(t, fmt.Sprintf("%s prefix=%d", tc.name, hi),
					res, batchOracle(t, g.NumVertices(), arrivals, hi))
			}
			got := rec.Counter(CtrCompactions)
			if tc.wantMax == 0 && got != 0 {
				t.Fatalf("never-compact engine compacted %d times", got)
			}
			if tc.wantMin > 0 && got != int64(snaps) {
				t.Fatalf("always-compact engine compacted %d times over %d snapshots", got, snaps)
			}
		})
	}

	// Duplicate arrivals: replay a prefix, then overwrite a slice of the
	// edges with new weights; the oracle replays the same sequence through a
	// Builder (last write wins on both sides).
	t.Run("overwrites", func(t *testing.T) {
		seq := append([]Arrival(nil), arrivals...)
		src := rng.New(9)
		for i := 0; i < 30; i++ {
			d := arrivals[src.Intn(m)]
			d.W = 0.25 + src.Float64()
			seq = append(seq, d)
		}
		e, err := New(Options{Workers: 4, MaxVertices: g.NumVertices()})
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(seq); lo += 8 {
			hi := min(lo+8, len(seq))
			if err := e.IngestBatch(seq[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "overwrites", res, batchOracle(t, g.NumVertices(), seq, len(seq)))
	})
}

// TestStreamAutoGrow checks the unbounded-vertex mode: arrivals extend the
// vertex set on demand and the snapshot still matches a batch run on a
// Builder sized to the final vertex count.
func TestStreamAutoGrow(t *testing.T) {
	g := graph.ErdosRenyi(50, 0.15, rng.New(8))
	arrivals := arrivalsOf(g)
	e, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arrivals {
		if err := e.Ingest(a.U, a.V, a.W); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
	}
	res, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Graph().NumVertices(), g.NumVertices(); got != want {
		t.Fatalf("auto-grown to %d vertices, want %d", got, want)
	}
	requireSameResult(t, "auto-grow", res, batchOracle(t, g.NumVertices(), arrivals, len(arrivals)))
}

// TestStreamValidation pins the typed rejections and their batch atomicity:
// an invalid arrival anywhere in a batch leaves the engine exactly as
// before.
func TestStreamValidation(t *testing.T) {
	e, err := New(Options{MaxVertices: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	before, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		batch []Arrival
		want  error
	}{
		{[]Arrival{{U: 0, V: 8, W: 1}}, graph.ErrVertexRange},
		{[]Arrival{{U: -1, V: 2, W: 1}}, graph.ErrVertexRange},
		{[]Arrival{{U: 3, V: 3, W: 1}}, graph.ErrSelfLoop},
		{[]Arrival{{U: 0, V: 2, W: 0}}, graph.ErrBadWeight},
		{[]Arrival{{U: 0, V: 2, W: math.NaN()}}, graph.ErrBadWeight},
		{[]Arrival{{U: 0, V: 2, W: math.Inf(1)}}, graph.ErrBadWeight},
		// Valid head, invalid tail: nothing of the batch may land.
		{[]Arrival{{U: 2, V: 3, W: 1}, {U: 4, V: 4, W: 1}}, graph.ErrSelfLoop},
	}
	for i, tc := range bad {
		if err := e.IngestBatch(tc.batch); !errors.Is(err, tc.want) {
			t.Errorf("batch %d: err = %v, want %v", i, err, tc.want)
		}
	}
	if e.Graph().NumEdges() != 1 {
		t.Fatalf("rejected batches changed the graph: %d edges", e.Graph().NumEdges())
	}
	after, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "after rejections", after, before)
}
