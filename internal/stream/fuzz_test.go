package stream

import (
	"errors"
	"math"
	"testing"

	"linkclust/internal/core"
	"linkclust/internal/graph"
)

// fuzzWeight maps one byte onto a hostile weight distribution: zeros,
// negatives, NaN, both infinities, a subnormal, and ordinary positives.
func fuzzWeight(b byte) float64 {
	switch b % 8 {
	case 0:
		return 0
	case 1:
		return -1.5
	case 2:
		return math.NaN()
	case 3:
		return math.Inf(1)
	case 4:
		return math.Inf(-1)
	case 5:
		return 5e-324
	default:
		return 0.1 + float64(b)/64
	}
}

// FuzzStream feeds fuzzed arrival sequences — duplicates, self-loops,
// out-of-range endpoints, hostile weights — through the incremental engine
// in fuzz-chosen batch sizes and worker counts. Every batch must either be
// rejected atomically with a typed validation error (the graph.Builder
// error taxonomy) or be accepted, and after the sequence the engine's
// Snapshot must equal — bitwise — a batch Cluster run on a Builder fed
// exactly the accepted batches. Byte layout: [n-seed, knobs, then (u, v, w)
// triples].
func FuzzStream(f *testing.F) {
	f.Add([]byte{8, 0x21, 0, 1, 9, 1, 2, 9, 0, 2, 9, 2, 2, 9})
	f.Add([]byte{4, 0x10, 1, 2, 7, 2, 1, 15, 0, 200, 9, 1, 3, 23})
	f.Add([]byte{23, 0x32, 5, 6, 6, 6, 7, 14, 5, 7, 22, 1, 5, 30, 2, 6, 38, 3, 7, 46})
	f.Add([]byte{2, 0x03, 0, 1, 2, 0, 1, 3, 0, 1, 4, 0, 1, 13})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		n := 2 + int(data[0]%23)
		workers := 1 + int(data[1]%4)
		batchSize := 1 + int(data[1]>>4%4)
		e, err := New(Options{MaxVertices: n, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		oracle := graph.NewBuilder(n)
		payload := data[2:]
		var batch []Arrival
		flush := func() {
			if len(batch) == 0 {
				return
			}
			err := e.IngestBatch(batch)
			if err != nil {
				if !errors.Is(err, graph.ErrVertexRange) &&
					!errors.Is(err, graph.ErrSelfLoop) &&
					!errors.Is(err, graph.ErrBadWeight) {
					t.Fatalf("untyped ingest error: %v", err)
				}
			} else {
				// Accepted batches replay into the oracle; a divergence in
				// what the two sides accept is itself a bug.
				for _, a := range batch {
					if err := oracle.AddEdge(a.U, a.V, a.W); err != nil {
						t.Fatalf("oracle rejected an accepted arrival (%d,%d,%v): %v", a.U, a.V, a.W, err)
					}
				}
			}
			batch = batch[:0]
		}
		for i := 0; i+2 < len(payload); i += 3 {
			batch = append(batch, Arrival{
				// -1 lands below range; values at and above n land beyond it.
				U: int(payload[i]) - 1,
				V: int(payload[i+1]) - 1,
				W: fuzzWeight(payload[i+2]),
			})
			if len(batch) >= batchSize {
				flush()
			}
		}
		flush()
		res, err := e.Snapshot()
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		want, err := core.Cluster(oracle.Build(nil))
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		requireSameResult(t, "fuzzed stream vs batch", res, want)
	})
}
