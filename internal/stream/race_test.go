package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/rng"
)

// countdownCtx mirrors the root package's deterministic cancellation source:
// Err is nil for the first k calls and context.Canceled afterwards, which
// pins cancellation to the k-th polling point without timing dependence.
type countdownCtx struct {
	remaining atomic.Int64
	done      chan struct{}
	once      sync.Once
}

func newCountdownCtx(k int64) *countdownCtx {
	c := &countdownCtx{done: make(chan struct{})}
	c.remaining.Store(k)
	return c
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

// waitGoroutinesBack polls until the goroutine count returns to base.
func waitGoroutinesBack(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamConcurrentIngestSnapshot hammers one engine from concurrent
// ingesters and snapshotters (run under -race in CI): every snapshot must be
// internally consistent, and the final state must match the batch oracle on
// the accumulated graph. Concurrent interleaving makes edge-id assignment
// order nondeterministic, so the oracle is built from the engine's own graph
// rather than from a replayed arrival order.
func TestStreamConcurrentIngestSnapshot(t *testing.T) {
	g := graph.ErdosRenyi(48, 0.15, rng.New(2))
	arrivals := arrivalsOf(g)
	e, err := New(Options{Workers: 2, MaxVertices: g.NumVertices()})
	if err != nil {
		t.Fatal(err)
	}
	const ingesters = 4
	errCh := make(chan error, ingesters+2)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	var ingestWG sync.WaitGroup
	for i := 0; i < ingesters; i++ {
		ingestWG.Add(1)
		go func(i int) {
			defer ingestWG.Done()
			for lo := i; lo < len(arrivals); lo += ingesters {
				a := arrivals[lo]
				if err := e.Ingest(a.U, a.V, a.W); err != nil {
					report(fmt.Errorf("ingester %d: %w", i, err))
					return
				}
			}
		}(i)
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Snapshot(); err != nil {
					report(fmt.Errorf("snapshotter: %w", err))
					return
				}
			}
		}()
	}
	ingestWG.Wait()
	close(stop)
	snapWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	res, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Cluster(e.Graph())
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "concurrent final", res, want)
}

// TestStreamCancelIngestLeavesValidState cancels an ingest at its first
// row-recompute poll: the arrival batch is already applied to the graph, the
// similarity refresh is abandoned, and the next (uncancelled) snapshot must
// still match the batch oracle on the full accumulated graph — the deferred
// refresh completes it. No goroutine may outlive the cancelled call.
func TestStreamCancelIngestLeavesValidState(t *testing.T) {
	g := graph.ErdosRenyi(48, 0.15, rng.New(5))
	arrivals := arrivalsOf(g)
	base := runtime.NumGoroutine()
	e, err := New(Options{Workers: 4, MaxVertices: g.NumVertices()})
	if err != nil {
		t.Fatal(err)
	}
	half := len(arrivals) / 2
	if err := e.IngestBatch(arrivals[:half]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// k=1: the entry poll passes, the first row-loop poll cancels — after
	// the graph mutation, before the refresh commits.
	err = e.IngestBatchCtx(newCountdownCtx(1), arrivals[half:])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ingest: err = %v, want context.Canceled", err)
	}
	waitGoroutinesBack(t, base)
	if got := e.Graph().NumEdges(); got != len(arrivals) {
		t.Fatalf("cancelled ingest left %d edges, want %d applied", got, len(arrivals))
	}
	res, err := e.Snapshot()
	if err != nil {
		t.Fatalf("snapshot after cancelled ingest: %v", err)
	}
	requireSameResult(t, "after cancelled ingest", res,
		batchOracle(t, g.NumVertices(), arrivals, len(arrivals)))
	waitGoroutinesBack(t, base)
}

// TestStreamCancelSnapshotRetries cancels a snapshot mid-sweep and requires
// the engine to survive: the cancelled call returns context.Canceled and no
// result, the state is unchanged, and an immediate retry produces the exact
// batch answer.
func TestStreamCancelSnapshotRetries(t *testing.T) {
	g := graph.ErdosRenyi(64, 0.2, rng.New(6))
	arrivals := arrivalsOf(g)
	base := runtime.NumGoroutine()
	e, err := New(Options{Workers: 4, MaxVertices: g.NumVertices()})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch(arrivals); err != nil {
		t.Fatal(err)
	}
	res, err := e.SnapshotCtx(newCountdownCtx(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled snapshot: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled snapshot returned a result alongside the error")
	}
	waitGoroutinesBack(t, base)
	got, err := e.Snapshot()
	if err != nil {
		t.Fatalf("retry after cancelled snapshot: %v", err)
	}
	requireSameResult(t, "retry after cancel", got,
		batchOracle(t, g.NumVertices(), arrivals, len(arrivals)))
	waitGoroutinesBack(t, base)
}
