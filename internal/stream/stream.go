// Package stream implements incremental link clustering over an edge
// stream: arrivals mutate a copy-on-write dynamic graph, only the similarity
// pairs an arrival can change are recomputed through the batch wedge kernel
// (one all-partners row per arrival endpoint), the fresh pairs are spliced
// into the maintained sorted pair list, and each Snapshot replays the
// fine-grained sweep from the earliest invalidated position using the
// engine's resumable checkpoints. The result
// is bitwise identical to a batch Cluster run on the accumulated graph —
// that differential property, not speed, is the package's contract, and the
// batch path doubles as the compaction fallback when too much of the list
// has been invalidated for replay to pay off.
//
// Correctness rests on three facts established by the batch engines:
//
//  1. Row independence. The wedge kernel's row u is a pure function of the
//     graph and the norm arrays — never of other rows — so recomputing an
//     affected row reproduces exactly the row a full batch pass would emit.
//  2. Changed-pair closure. For arrival endpoint set D, a pair's
//     similarity, common list, or existence can change only if one of its
//     endpoints is in D — similarity reads nothing beyond the endpoints'
//     wedge weights and norms. The all-partners kernel
//     (core.RowKernel.PairsTouching) computes exactly those pairs, one
//     kernel row per endpoint, each bitwise identical to the batch row
//     enumeration's copy (see DESIGN.md §9; edges are never deleted, which
//     makes the post-arrival neighborhoods supersets of every intermediate
//     state and lets refreshes batch across arrivals). Every other pair in
//     the maintained list is untouched storage from earlier refreshes.
//  3. Sweep resumability. The sweep engine's behavior beyond a window
//     boundary is a pure function of the captured SweepState plus the pairs
//     beyond it, so replaying from a checkpoint at or below the splice's
//     first divergence reproduces the from-scratch merge stream bitwise
//     (core.SweepResumeCtx).
package stream

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"linkclust/internal/core"
	"linkclust/internal/fault"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/par"
)

// Counter names recorded by the stream engine. All are pure functions of the
// arrival sequence and batching — never of the worker count — so they join
// the golden worker-invariant set.
const (
	// CtrAffectedRows counts similarity rows recomputed across refreshes —
	// one all-partners kernel row per distinct pending arrival endpoint.
	CtrAffectedRows = "stream.affected_rows"
	// CtrReplayedOps counts sweep operations replayed by snapshots (ops at
	// and above the resume checkpoint; a compaction counts the full list).
	CtrReplayedOps = "stream.replayed_ops"
	// CtrCompactions counts snapshots that fell back to the batch path.
	CtrCompactions = "stream.compactions"
	// CtrBatches counts successfully ingested arrival batches.
	CtrBatches = "stream.batches"
)

// Arrival is one streamed edge: endpoints and weight, validated exactly like
// graph.Builder.AddEdge. A repeated pair overwrites the weight (last write
// wins, keeping the original edge id).
type Arrival struct {
	U, V int
	W    float64
}

// Options configures an Engine. The zero value is usable: auto-grown vertex
// set, default workers, dirty-fraction compaction at one half.
type Options struct {
	// Workers is the worker count for row recomputation sorts and sweep
	// replays, normalized like every parallel entry point.
	Workers int
	// Recorder receives the stream.* counters plus the phase timers and
	// counters of the underlying similarity/sweep runs. Nil records nothing.
	Recorder *obs.Recorder
	// MaxVertices fixes the vertex set to [0, MaxVertices) and rejects
	// arrivals outside it, mirroring graph.NewBuilder(n). Zero means the
	// vertex set grows on demand to max(U, V)+1.
	MaxVertices int
	// CompactDirtyFraction triggers the batch fallback when the fraction of
	// sweep operations needing replay reaches it. Zero means the default of
	// 0.5; values above 1 never trigger on fraction.
	CompactDirtyFraction float64
	// CompactAfterOps triggers the batch fallback once the operations
	// replayed since the last compaction reach it. Zero disables the
	// op-count trigger.
	CompactAfterOps int64
	// CheckpointEvery is the minimum operation spacing of sweep checkpoints
	// kept for future replays. Zero means the default (32768); checkpoints
	// land only on the engine's op-count window boundaries regardless.
	CheckpointEvery int
}

const (
	defaultDirtyFraction   = 0.5
	defaultCheckpointEvery = 32768
	// maxCheckpoints bounds the kept checkpoint list; past it, every other
	// interior checkpoint is dropped (deterministically, by index).
	maxCheckpoints = 16
)

// Engine is the incremental clustering engine. All methods are safe for
// concurrent use; ingestion and snapshots serialize on one mutex, so a
// Snapshot observes either all or none of any concurrent IngestBatch.
type Engine struct {
	opt   Options
	dirty float64
	ckEv  int

	mu sync.Mutex
	g  *graph.Dynamic
	// h1/h2 are the maintained pass-1 norm arrays; entries go stale only for
	// vertices whose adjacency changed, which are exactly the pending set.
	h1, h2 []float64
	// rks holds one row kernel per refresh worker; each worker owns its
	// scratch, so recomputed rows stay pure functions of (graph, h1, h2).
	rks []*core.RowKernel
	// pl is the maintained pair list in list-L order; ckpts are sweep states
	// valid against it, ascending by Pos (the last one, when clean, is the
	// full-replay state at Pos = len(pl)).
	pl    []core.Pair
	ckpts []core.SweepState
	// pending holds endpoints of applied-but-unrefreshed arrivals. Non-empty
	// only after a cancelled ingest; the next ingest or snapshot retries the
	// refresh (idempotent — rows recompute from the graph).
	pending map[int]struct{}

	// snap/res cache the last snapshot; valid while clean.
	clean bool
	snap  *graph.Graph
	res   *core.Result

	opsSinceCompact int64
}

// New returns an engine with the given options.
func New(opt Options) (*Engine, error) {
	if opt.MaxVertices < 0 {
		return nil, fmt.Errorf("stream: negative MaxVertices %d: %w", opt.MaxVertices, graph.ErrVertexRange)
	}
	dirty := opt.CompactDirtyFraction
	if dirty == 0 {
		dirty = defaultDirtyFraction
	}
	if dirty < 0 || math.IsNaN(dirty) {
		return nil, fmt.Errorf("stream: invalid CompactDirtyFraction %v", opt.CompactDirtyFraction)
	}
	ckEv := opt.CheckpointEvery
	if ckEv <= 0 {
		ckEv = defaultCheckpointEvery
	}
	e := &Engine{
		opt:     opt,
		dirty:   dirty,
		ckEv:    ckEv,
		g:       graph.NewDynamic(),
		pending: make(map[int]struct{}),
	}
	if opt.MaxVertices > 0 {
		if err := e.g.EnsureVertices(opt.MaxVertices); err != nil {
			return nil, err
		}
		e.growLocked(opt.MaxVertices)
	}
	return e, nil
}

// Ingest applies one arrival. See IngestBatchCtx.
func (e *Engine) Ingest(u, v int, w float64) error {
	return e.IngestBatchCtx(context.Background(), []Arrival{{U: u, V: v, W: w}})
}

// IngestCtx is Ingest with cancellation.
func (e *Engine) IngestCtx(ctx context.Context, u, v int, w float64) error {
	return e.IngestBatchCtx(ctx, []Arrival{{U: u, V: v, W: w}})
}

// IngestBatch applies a batch of arrivals. See IngestBatchCtx.
func (e *Engine) IngestBatch(batch []Arrival) error {
	return e.IngestBatchCtx(context.Background(), batch)
}

// IngestBatchCtx validates and applies a batch of arrivals, then refreshes
// the affected similarity rows. Validation is atomic: if any arrival is
// invalid (endpoints out of range, self-loop, non-positive/non-finite
// weight — the graph.Builder rules, as typed errors wrapping
// graph.ErrVertexRange, graph.ErrSelfLoop, or graph.ErrBadWeight), no
// arrival of the batch is applied. On cancellation mid-refresh the graph
// mutation stays applied and the endpoints stay pending, so the engine
// remains valid: the next ingest or snapshot completes the refresh before
// using the pair list.
func (e *Engine) IngestBatchCtx(ctx context.Context, batch []Arrival) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	fault.Hit(fault.StreamIngest)
	if err := ctx.Err(); err != nil {
		return err
	}
	// Validate the whole batch against the post-batch vertex count before
	// touching anything.
	n := e.g.NumVertices()
	for _, a := range batch {
		if a.U < 0 || a.V < 0 || (e.opt.MaxVertices > 0 && (a.U >= n || a.V >= n)) {
			return fmt.Errorf("graph: edge (%d,%d) outside [0,%d): %w", a.U, a.V, n, graph.ErrVertexRange)
		}
		if a.U == a.V {
			return fmt.Errorf("graph: edge (%d,%d): %w", a.U, a.V, graph.ErrSelfLoop)
		}
		if !(a.W > 0) || math.IsInf(a.W, 1) {
			return fmt.Errorf("graph: edge (%d,%d) weight %v (must be positive and finite): %w", a.U, a.V, a.W, graph.ErrBadWeight)
		}
		if e.opt.MaxVertices == 0 {
			if m := max(a.U, a.V) + 1; m > n {
				n = m
			}
		}
	}
	if n > e.g.NumVertices() {
		if err := e.g.EnsureVertices(n); err != nil {
			return err
		}
	}
	for _, a := range batch {
		if _, _, err := e.g.AddEdge(a.U, a.V, a.W); err != nil {
			// Unreachable: the batch was validated above.
			panic(fmt.Sprintf("stream: validated arrival rejected: %v", err))
		}
		e.pending[a.U] = struct{}{}
		e.pending[a.V] = struct{}{}
	}
	if len(batch) > 0 {
		e.clean = false
		e.opt.Recorder.Add(CtrBatches, 1)
	}
	return e.refreshLocked(ctx)
}

// growLocked resizes the norm arrays and row kernel to n vertices,
// preserving existing entries.
func (e *Engine) growLocked(n int) {
	if n <= len(e.h1) {
		return
	}
	h1 := make([]float64, n)
	h2 := make([]float64, n)
	copy(h1, e.h1)
	copy(h2, e.h2)
	e.h1, e.h2 = h1, h2
}

// refreshLocked recomputes the similarity rows invalidated by the pending
// endpoints and splices them into the maintained pair list, pruning sweep
// checkpoints past the first divergence. It commits only at the end: a
// cancellation mid-way leaves the old list, checkpoints, and pending set in
// place (norm entries of pending vertices may already be refreshed, which is
// harmless — they are recomputed from the current graph, and only rows
// computed in the same successful refresh read them).
func (e *Engine) refreshLocked(ctx context.Context) error {
	if len(e.pending) == 0 {
		return nil
	}
	g := e.g.Snapshot()
	e.growLocked(g.NumVertices())

	// Endpoint norms first: the recomputed rows below read them.
	dset := make([]int, 0, len(e.pending))
	for d := range e.pending {
		dset = append(dset, d)
	}
	sort.Ints(dset)
	for _, d := range dset {
		core.VertexNorms(g, e.h1, e.h2, d, d+1)
	}

	// A pair can change only if an endpoint is in D: its similarity reads
	// the wedge weights and norms of its endpoints alone, and its common
	// list (like its existence) changes only through an edge incident to an
	// endpoint (DESIGN.md §9). So the changed pairs are exactly the pairs
	// involving D, and the all-partners kernel computes each one bitwise
	// identically to the row enumeration whichever endpoint it runs from —
	// one kernel row per distinct arrival endpoint.
	inD := make([]bool, g.NumVertices())
	for _, d := range dset {
		inD[d] = true
	}

	// Recompute in parallel. Rows are pure functions of (graph, norms), so
	// workers claiming endpoints dynamically and landing results by index
	// keeps the output deterministic regardless of scheduling; the context
	// is polled at claim boundaries so a cancelled ingest stays responsive.
	workers := par.NormalizeCap(e.opt.Workers, len(dset))
	for len(e.rks) < workers {
		e.rks = append(e.rks, core.NewRowKernel(0))
	}
	perD := make([][]core.Pair, len(dset))
	if err := func() (err error) {
		defer par.RecoverPanicError(&err)
		var next atomic.Int64
		par.Run(workers, func(t int, aborted func() bool) {
			const chunk = 8
			rk := e.rks[t]
			rk.Grow(g.NumVertices())
			for {
				hi := int(next.Add(chunk))
				lo := hi - chunk
				if lo >= len(dset) || aborted() || ctx.Err() != nil {
					return
				}
				if hi > len(dset) {
					hi = len(dset)
				}
				for i := lo; i < hi; i++ {
					perD[i] = rk.PairsTouching(g, dset[i], e.h1, e.h2)
				}
			}
		})
		return nil
	}(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Collect, dropping the duplicate copy of pairs with both endpoints in D
	// (both endpoints' kernels emit them, bitwise equal; the lower endpoint's
	// copy is kept).
	nfresh := 0
	for _, r := range perD {
		nfresh += len(r)
	}
	fresh := make([]core.Pair, 0, nfresh)
	for i, r := range perD {
		d := int32(dset[i])
		for _, p := range r {
			if o := p.U + p.V - d; inD[o] && o < d {
				continue
			}
			fresh = append(fresh, p)
		}
	}
	if err := par.SortFuncCtx(ctx, fresh, workers, core.CmpPairs); err != nil {
		return err
	}

	// Splice: drop the affected rows' old pairs, merge the fresh ones in
	// list-L order, and find the first index where the new list diverges.
	newPl := make([]core.Pair, 0, len(e.pl)+len(fresh))
	divergence := -1
	fi := 0
	for _, p := range e.pl {
		if inD[p.U] || inD[p.V] {
			continue
		}
		for fi < len(fresh) && core.CmpPairs(fresh[fi], p) < 0 {
			newPl = appendTracked(newPl, fresh[fi], e.pl, &divergence)
			fi++
		}
		newPl = appendTracked(newPl, p, e.pl, &divergence)
	}
	for ; fi < len(fresh); fi++ {
		newPl = appendTracked(newPl, fresh[fi], e.pl, &divergence)
	}
	if divergence < 0 {
		divergence = min(len(newPl), len(e.pl))
	}

	// Commit.
	e.pl = newPl
	for len(e.ckpts) > 0 && e.ckpts[len(e.ckpts)-1].Pos > divergence {
		e.ckpts = e.ckpts[:len(e.ckpts)-1]
	}
	clear(e.pending)
	e.clean = false
	e.snap, e.res = nil, nil
	e.opt.Recorder.Add(CtrAffectedRows, int64(len(dset)))
	return nil
}

// appendTracked appends p to dst, recording in *div the first position where
// dst stops matching old element-wise.
func appendTracked(dst []core.Pair, p core.Pair, old []core.Pair, div *int) []core.Pair {
	if *div < 0 {
		i := len(dst)
		if i >= len(old) || !samePair(&old[i], &p) {
			*div = i
		}
	}
	return append(dst, p)
}

// samePair reports bitwise pair equality. Common lists are compared by
// content with an aliasing fast path: an unchanged row keeps its old arena
// slices, so most survivors compare by pointer.
func samePair(a, b *core.Pair) bool {
	if a.U != b.U || a.V != b.V || math.Float64bits(a.Sim) != math.Float64bits(b.Sim) {
		return false
	}
	if len(a.Common) != len(b.Common) {
		return false
	}
	if len(a.Common) == 0 || &a.Common[0] == &b.Common[0] {
		return true
	}
	return slices.Equal(a.Common, b.Common)
}

// Snapshot clusters the accumulated graph. See SnapshotCtx.
func (e *Engine) Snapshot() (*core.Result, error) {
	return e.SnapshotCtx(context.Background())
}

// SnapshotCtx returns the clustering of the graph accumulated so far — the
// merge stream, chain, and counters a batch Cluster run on Graph() would
// produce, bitwise. It replays the sweep from the deepest checkpoint still
// valid after the last splice, unless the compaction trigger fires, in which
// case it recomputes the pair list through the batch similarity path (the
// correctness oracle) and rebuilds the checkpoints from scratch. Results are
// cached until the next successful ingest; callers must not mutate the
// returned Result. On cancellation the engine state is unchanged and the
// next call retries.
func (e *Engine) SnapshotCtx(ctx context.Context) (*core.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.refreshLocked(ctx); err != nil {
		return nil, err
	}
	if e.clean && e.res != nil {
		return e.res, nil
	}
	g := e.g.Snapshot()
	rec := e.opt.Recorder

	// Decide replay vs compaction from the op counts, which are pure
	// functions of the arrival history — never of workers or timing.
	var from *core.SweepState
	if len(e.ckpts) > 0 {
		from = &e.ckpts[len(e.ckpts)-1]
	}
	total := opsIn(e.pl, 0)
	replay := total
	if from != nil {
		replay = opsIn(e.pl, from.Pos)
	}
	compact := false
	if total > 0 && float64(replay)/float64(total) >= e.dirty {
		compact = true
	}
	if e.opt.CompactAfterOps > 0 && e.opsSinceCompact+replay >= e.opt.CompactAfterOps {
		compact = true
	}

	// CheckpointEvery is a *minimum* spacing: on large lists it is raised so
	// one pass captures at most maxCheckpoints states. Each capture deep-copies
	// the chain and merge stream (O(|E| + K1)), so a fixed spacing would make
	// checkpointing quadratic in list size across a replay.
	saveEvery := int64(e.ckEv)
	if adaptive := total / maxCheckpoints; saveEvery < adaptive {
		saveEvery = adaptive
	}
	var ckpts []core.SweepState
	save := func(s core.SweepState) { ckpts = append(ckpts, s) }
	var res *core.Result
	if compact {
		fault.Hit(fault.StreamCompact)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pl, err := core.SimilarityCtx(ctx, g, e.opt.Workers, rec)
		if err != nil {
			return nil, err
		}
		res, err = core.SweepResumeCtx(ctx, g, pl, nil, e.opt.Workers, int(saveEvery), save, rec)
		if err != nil {
			return nil, err
		}
		// The batch list is the oracle the maintained list must equal; adopt
		// it (same content, freshly compacted storage).
		e.pl = pl.Pairs
		e.ckpts = thinCheckpoints(ckpts)
		e.opsSinceCompact = 0
		rec.Add(CtrCompactions, 1)
		rec.Add(CtrReplayedOps, total)
	} else {
		// A checkpoint captured against a shorter edge set extends with
		// identity entries: ops below its position involve only edges that
		// existed when it was taken, so later edges are still singletons
		// there, exactly as in a from-scratch run.
		if from != nil && len(from.Chain) < g.NumEdges() {
			st := *from
			chain := make([]int32, g.NumEdges())
			copy(chain, st.Chain)
			for i := len(st.Chain); i < len(chain); i++ {
				chain[i] = int32(i)
			}
			st.Chain = chain
			from = &st
		}
		var err error
		res, err = core.SweepResumeCtx(ctx, g, core.NewSortedPairList(e.pl), from, e.opt.Workers, int(saveEvery), save, rec)
		if err != nil {
			return nil, err
		}
		// Checkpoints at or below the resume point stay valid for the
		// current list; the replay's saves extend past them.
		merged := append([]core.SweepState{}, e.ckpts...)
		floor := -1
		if from != nil {
			floor = from.Pos
		}
		for _, s := range ckpts {
			if s.Pos > floor {
				merged = append(merged, s)
			}
		}
		e.ckpts = thinCheckpoints(merged)
		e.opsSinceCompact += replay
		rec.Add(CtrReplayedOps, replay)
	}
	e.snap, e.res = g, res
	e.clean = true
	return res, nil
}

// Graph returns an immutable snapshot of the accumulated graph.
func (e *Engine) Graph() *graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.g.Snapshot()
}

// opsIn sums the incident-operation counts of pairs at and above pos.
func opsIn(pl []core.Pair, pos int) int64 {
	var n int64
	for i := pos; i < len(pl); i++ {
		n += int64(len(pl[i].Common))
	}
	return n
}

// thinCheckpoints deterministically caps the checkpoint list: while too
// long, every other interior checkpoint is dropped (the final state is
// always kept).
func thinCheckpoints(cks []core.SweepState) []core.SweepState {
	for len(cks) > maxCheckpoints {
		out := cks[:0]
		for i := 0; i < len(cks)-1; i += 2 {
			out = append(out, cks[i])
		}
		out = append(out, cks[len(cks)-1])
		cks = out
	}
	return cks
}
