// Package unionfind provides disjoint-set structures used across the
// repository: a classic union-by-rank/path-compression implementation and a
// union-by-minimum variant whose cluster representatives are the minimum
// member — the labeling convention of the paper's chain array C (Theorem 1),
// which lets partitions from different algorithms be compared for equality
// rather than merely isomorphism.
//
// The chain array (core.Chain) and union-find solve the same connectivity
// problem with different operational profiles: the chain rewrites whole
// chains to the minimum on every merge (paying O(√K2·|E|) total, Theorem 2)
// but supports the replica-merge scheme of Section VI-B and O(1) root reads
// after compression; union-find defers compression to queries. The ablation
// benchmark in bench_test.go quantifies the difference on real merge
// streams.
package unionfind

// Min is a disjoint-set forest whose representative is always the minimum
// element of its set. The zero value is unusable; call NewMin.
type Min struct {
	parent []int32
}

// NewMin returns a Min over n singleton sets.
func NewMin(n int) *Min {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &Min{parent: p}
}

// Len returns the number of elements.
func (u *Min) Len() int { return len(u.parent) }

// Find returns the minimum member of i's set, with path halving.
func (u *Min) Find(i int32) int32 {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

// Union joins the sets of a and b and reports whether they were distinct.
func (u *Min) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if ra < rb {
		u.parent[rb] = ra
	} else {
		u.parent[ra] = rb
	}
	return true
}

// Labels returns the representative of every element.
func (u *Min) Labels() []int32 {
	out := make([]int32, len(u.parent))
	for i := range u.parent {
		out[i] = u.Find(int32(i))
	}
	return out
}

// NumSets returns the number of disjoint sets.
func (u *Min) NumSets() int {
	n := 0
	for i, p := range u.parent {
		if int32(i) == p {
			n++
		}
	}
	return n
}

// Ranked is the textbook union-by-rank/path-compression forest. Its
// representatives are arbitrary (rank-determined), so use Min when labels
// must be canonical; Ranked is the faster choice when only connectivity
// matters, and is the comparator for the chain-structure ablation.
type Ranked struct {
	parent []int32
	rank   []int8
}

// NewRanked returns a Ranked forest over n singleton sets.
func NewRanked(n int) *Ranked {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &Ranked{parent: p, rank: make([]int8, n)}
}

// Len returns the number of elements.
func (u *Ranked) Len() int { return len(u.parent) }

// Find returns the representative of i's set, with path halving.
func (u *Ranked) Find(i int32) int32 {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

// Union joins the sets of a and b and reports whether they were distinct.
func (u *Ranked) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	switch {
	case u.rank[ra] < u.rank[rb]:
		u.parent[ra] = rb
	case u.rank[ra] > u.rank[rb]:
		u.parent[rb] = ra
	default:
		u.parent[rb] = ra
		u.rank[ra]++
	}
	return true
}

// NumSets returns the number of disjoint sets.
func (u *Ranked) NumSets() int {
	n := 0
	for i, p := range u.parent {
		if int32(i) == p {
			n++
		}
	}
	return n
}

// CanonicalLabels returns min-member labels for every element, making
// Ranked partitions comparable with Min and chain partitions.
func (u *Ranked) CanonicalLabels() []int32 {
	minOf := make(map[int32]int32)
	n := len(u.parent)
	for i := n - 1; i >= 0; i-- {
		minOf[u.Find(int32(i))] = int32(i) // descending scan leaves the minimum
	}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = minOf[u.Find(int32(i))]
	}
	return out
}
