package unionfind

import (
	"testing"
	"testing/quick"

	"linkclust/internal/rng"
)

func TestMinBasic(t *testing.T) {
	u := NewMin(5)
	if u.Len() != 5 || u.NumSets() != 5 {
		t.Fatalf("fresh: len=%d sets=%d", u.Len(), u.NumSets())
	}
	if !u.Union(3, 4) {
		t.Fatal("first union reported no-op")
	}
	if u.Union(4, 3) {
		t.Fatal("repeat union reported change")
	}
	if u.Find(4) != 3 {
		t.Fatalf("Find(4) = %d, want min 3", u.Find(4))
	}
	u.Union(0, 4)
	if u.Find(3) != 0 || u.Find(4) != 0 {
		t.Fatal("transitive union broken")
	}
	if u.NumSets() != 3 {
		t.Fatalf("sets = %d, want 3", u.NumSets())
	}
}

func TestMinLabels(t *testing.T) {
	u := NewMin(4)
	u.Union(1, 3)
	labels := u.Labels()
	want := []int32{0, 1, 2, 1}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", labels, want)
		}
	}
}

func TestRankedBasic(t *testing.T) {
	u := NewRanked(6)
	u.Union(0, 1)
	u.Union(2, 3)
	u.Union(1, 2)
	if u.Find(0) != u.Find(3) {
		t.Fatal("connectivity lost")
	}
	if u.Find(4) == u.Find(0) {
		t.Fatal("spurious connectivity")
	}
	if u.NumSets() != 3 {
		t.Fatalf("sets = %d, want 3", u.NumSets())
	}
	if u.Len() != 6 {
		t.Fatalf("len = %d", u.Len())
	}
}

func TestRankedCanonicalLabels(t *testing.T) {
	u := NewRanked(5)
	u.Union(4, 2)
	u.Union(2, 1)
	labels := u.CanonicalLabels()
	want := []int32{0, 1, 1, 3, 1}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("CanonicalLabels = %v, want %v", labels, want)
		}
	}
}

// TestMinRankedAgree: both structures realize the same partition for any
// merge sequence, compared through canonical labels.
func TestMinRankedAgree(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 1
		src := rng.New(seed)
		min := NewMin(n)
		rk := NewRanked(n)
		for k := 0; k < int(mRaw); k++ {
			a, b := int32(src.Intn(n)), int32(src.Intn(n))
			ca := min.Union(a, b)
			cb := rk.Union(a, b)
			if ca != cb {
				return false
			}
		}
		if min.NumSets() != rk.NumSets() {
			return false
		}
		ml, rl := min.Labels(), rk.CanonicalLabels()
		for i := range ml {
			if ml[i] != rl[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestMinIdempotentFind: Find never changes the partition.
func TestMinIdempotentFind(t *testing.T) {
	u := NewMin(10)
	u.Union(2, 7)
	u.Union(7, 9)
	before := u.Labels()
	for i := 0; i < 10; i++ {
		u.Find(int32(i))
	}
	after := u.Labels()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Find mutated the partition")
		}
	}
}

func BenchmarkMinUnionFind(b *testing.B) {
	src := rng.New(1)
	n := 10000
	type op struct{ a, b int32 }
	ops := make([]op, 20000)
	for i := range ops {
		ops[i] = op{int32(src.Intn(n)), int32(src.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NewMin(n)
		for _, o := range ops {
			u.Union(o.a, o.b)
		}
	}
}

func BenchmarkRankedUnionFind(b *testing.B) {
	src := rng.New(1)
	n := 10000
	type op struct{ a, b int32 }
	ops := make([]op, 20000)
	for i := range ops {
		ops[i] = op{int32(src.Intn(n)), int32(src.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NewRanked(n)
		for _, o := range ops {
			u.Union(o.a, o.b)
		}
	}
}
