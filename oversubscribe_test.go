package linkclust

import (
	"os"
	"runtime"
	"testing"
)

// TestMain oversubscribes the runtime on small CI machines so the
// differential, race, cancellation, and fault suites keep exercising real
// multi-worker interleavings: par.DefaultCap tracks max(GOMAXPROCS, NumCPU)
// with no unconditional floor, and without this bump a 1-core runner would
// clamp every T=2..8 scenario to serial — the suites would pass trivially
// without testing the parallel engines at all.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
	os.Exit(m.Run())
}
