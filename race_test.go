package linkclust

// Race-exercise tests: many workers on small graphs, repeated, so that
// `go test -race ./...` sweeps the parallel similarity fan-out, the coarse
// sweep's replica merging, and a Recorder shared across concurrent
// pipelines. Worker counts deliberately exceed the host's core count —
// par.Normalize keeps them schedulable while preserving the goroutine
// interleavings the race detector needs.

import (
	"context"
	"math"
	"sync"
	"testing"

	"linkclust/internal/coarse"
	"linkclust/internal/core"
	"linkclust/internal/graph"
	"linkclust/internal/obs"
	"linkclust/internal/rng"
)

func raceGraph(seed uint64) *graph.Graph {
	return graph.ErdosRenyi(80, 0.2, rng.New(seed))
}

func TestRaceSimilarityParallel(t *testing.T) {
	// SimilarityParallel is the wedge-major kernel: its parallel output is
	// bitwise identical to serial, so the comparison here is exact.
	g := raceGraph(1)
	serial := core.Similarity(g)
	serial.Sort()
	for rep := 0; rep < 4; rep++ {
		for _, workers := range []int{2, 4, 8} {
			pl := core.SimilarityParallel(g, workers)
			pl.Sort()
			if len(pl.Pairs) != len(serial.Pairs) {
				t.Fatalf("workers=%d: %d pairs, want %d", workers, len(pl.Pairs), len(serial.Pairs))
			}
			for i := range serial.Pairs {
				s, p := &serial.Pairs[i], &pl.Pairs[i]
				if s.U != p.U || s.V != p.V || s.Sim != p.Sim {
					t.Fatalf("workers=%d pair %d: (%d,%d,%v) vs (%d,%d,%v)",
						workers, i, p.U, p.V, p.Sim, s.U, s.V, s.Sim)
				}
			}
		}
	}
}

// TestRaceSimilarityWedgeKernel hammers the wedge-major kernel's two
// atomic-cursor passes: several concurrent parallel runs over one shared
// graph, each compared exactly against the serial wedge kernel. The count
// and fill passes share per-worker scratch and write disjoint CSR slots —
// any overlap is a race the detector will flag.
func TestRaceSimilarityWedgeKernel(t *testing.T) {
	g := raceGraph(4)
	serial := core.SimilarityWedge(g)
	var wg sync.WaitGroup
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			wg.Add(1)
			go func(workers int) {
				defer wg.Done()
				pl := core.SimilarityWedgeParallel(g, workers)
				if len(pl.Pairs) != len(serial.Pairs) {
					t.Errorf("workers=%d: %d pairs, want %d", workers, len(pl.Pairs), len(serial.Pairs))
					return
				}
				for i := range serial.Pairs {
					s, p := &serial.Pairs[i], &pl.Pairs[i]
					if s.U != p.U || s.V != p.V || s.Sim != p.Sim {
						t.Errorf("workers=%d pair %d: (%d,%d,%v) vs (%d,%d,%v)",
							workers, i, p.U, p.V, p.Sim, s.U, s.V, s.Sim)
						return
					}
				}
			}(workers)
		}
	}
	wg.Wait()
}

// TestRaceSimilarityParallelLegacy keeps race coverage on the legacy
// hash-map fallback (hierarchical map merges, bucketed pass 3), which only
// matches serial to float tolerance.
func TestRaceSimilarityParallelLegacy(t *testing.T) {
	g := raceGraph(1)
	serial := core.SimilarityLegacy(g)
	serial.Sort()
	for rep := 0; rep < 2; rep++ {
		for _, workers := range []int{2, 4, 8} {
			pl := core.SimilarityParallelLegacy(g, workers)
			pl.Sort()
			if len(pl.Pairs) != len(serial.Pairs) {
				t.Fatalf("workers=%d: %d pairs, want %d", workers, len(pl.Pairs), len(serial.Pairs))
			}
			for i := range serial.Pairs {
				s, p := &serial.Pairs[i], &pl.Pairs[i]
				if s.U != p.U || s.V != p.V || math.Abs(s.Sim-p.Sim) > 1e-12 {
					t.Fatalf("workers=%d pair %d: (%d,%d,%v) vs (%d,%d,%v)",
						workers, i, p.U, p.V, p.Sim, s.U, s.V, s.Sim)
				}
			}
		}
	}
}

func TestRaceCoarseSweepReplicaMerge(t *testing.T) {
	g := raceGraph(2)
	pl := core.Similarity(g)
	// Delta0 well above parallelMerge's serial-fallback threshold so the
	// replica clone/fold path actually runs.
	params := coarse.Params{Gamma: 2, Phi: 4, Delta0: 256, Eta0: 4, Workers: 1}
	serial, err := coarse.Sweep(g, pl, params)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		for _, workers := range []int{2, 4, 8} {
			params.Workers = workers
			rec := obs.New()
			res, err := coarse.SweepRecorded(g, pl, params, rec)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if res.FinalClusters != serial.FinalClusters || res.Levels != serial.Levels {
				t.Fatalf("workers=%d: %d clusters / %d levels, want %d / %d",
					workers, res.FinalClusters, res.Levels, serial.FinalClusters, serial.Levels)
			}
			if res.OpsProcessed != serial.OpsProcessed {
				t.Fatalf("workers=%d: ops %d vs %d", workers, res.OpsProcessed, serial.OpsProcessed)
			}
			if rec.Counter(coarse.CtrReplicaClones) == 0 {
				t.Fatalf("workers=%d: replica path never engaged (Delta0 too small for this workload?)", workers)
			}
		}
	}
}

// TestRaceSweepParallel runs concurrent parallel fine-grained sweeps — each
// on its own PairList, all recording into one shared Recorder — and checks
// every merge stream bitwise against the serial sweep. This sweeps the
// engine's resolve/find/apply fan-out and the reservation scan under the
// race detector while the Recorder takes counter and phase writes from all
// pipelines at once.
func TestRaceSweepParallel(t *testing.T) {
	g := raceGraph(5)
	serial, err := core.Sweep(g, core.Similarity(g))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	var wg sync.WaitGroup
	runs := 0
	for rep := 0; rep < 3; rep++ {
		for _, workers := range []int{2, 4, 8} {
			runs++
			wg.Add(1)
			go func(workers int) {
				defer wg.Done()
				res, err := core.SweepParallelRecorded(g, core.Similarity(g), workers, rec)
				if err != nil {
					t.Errorf("workers=%d: %v", workers, err)
					return
				}
				if len(res.Merges) != len(serial.Merges) {
					t.Errorf("workers=%d: %d merges, want %d", workers, len(res.Merges), len(serial.Merges))
					return
				}
				for i := range serial.Merges {
					if res.Merges[i] != serial.Merges[i] {
						t.Errorf("workers=%d merge %d: %+v, want %+v", workers, i, res.Merges[i], serial.Merges[i])
						return
					}
				}
			}(workers)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got, want := rec.Counter(core.CtrSweepMerges), int64(runs)*int64(len(serial.Merges)); got != want {
		t.Fatalf("shared counter %s = %d, want %d", core.CtrSweepMerges, got, want)
	}
}

// TestSweepSortsPairListInPlace documents a sharing hazard: both sweeps sort
// the PairList in place as their first act, so callers running concurrent
// sweeps must hand each its own copy (as the tests above do via separate
// Similarity calls) — sharing one list across goroutines is a data race even
// though the sweeps never write the pairs themselves afterwards.
func TestSweepSortsPairListInPlace(t *testing.T) {
	g := raceGraph(6)
	pl := core.Similarity(g)
	presorted := true
	for i := 1; i < len(pl.Pairs); i++ {
		if pl.Pairs[i].Sim > pl.Pairs[i-1].Sim {
			presorted = false
			break
		}
	}
	if presorted {
		t.Fatal("similarity output arrived pre-sorted; pick a graph that actually exercises the in-place sort")
	}
	if _, err := core.Sweep(g, pl); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pl.Pairs); i++ {
		if pl.Pairs[i].Sim > pl.Pairs[i-1].Sim {
			t.Fatalf("caller's list not sorted in place at %d", i)
		}
	}
	pl2 := core.Similarity(g)
	if _, err := core.SweepParallel(g, pl2, 4); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pl2.Pairs); i++ {
		if pl2.Pairs[i].Sim > pl2.Pairs[i-1].Sim {
			t.Fatalf("caller's list not sorted in place by parallel sweep at %d", i)
		}
	}
}

// TestRaceClusterCtxSharedGraph is the service-layer scenario under the race
// detector: many concurrent ClusterCtx jobs over ONE shared immutable Graph,
// with mixed engines (serial, windowed-parallel, pipelined) and mixed worker
// counts — exactly how the linkclustd worker pool runs jobs against interned
// graphs. Every concurrent result must be bitwise identical to the solo
// serial run; any engine write to shared graph state would surface both as a
// race report and as a diverging merge stream.
func TestRaceClusterCtxSharedGraph(t *testing.T) {
	g := raceGraph(7)
	solo, err := ClusterCtx(context.Background(), g, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}

	type variant struct {
		workers  int
		pipeline bool
	}
	variants := []variant{
		{1, false}, {2, false}, {4, false}, {8, false},
		{2, true}, {4, true}, {8, true},
	}
	var wg sync.WaitGroup
	for rep := 0; rep < 3; rep++ {
		for _, v := range variants {
			wg.Add(1)
			go func(v variant) {
				defer wg.Done()
				res, err := ClusterCtx(context.Background(), g, ClusterOptions{
					Workers:  v.workers,
					Pipeline: v.pipeline,
				})
				if err != nil {
					t.Errorf("workers=%d pipeline=%v: %v", v.workers, v.pipeline, err)
					return
				}
				if len(res.Merges) != len(solo.Merges) {
					t.Errorf("workers=%d pipeline=%v: %d merges, want %d",
						v.workers, v.pipeline, len(res.Merges), len(solo.Merges))
					return
				}
				for i := range solo.Merges {
					if res.Merges[i] != solo.Merges[i] {
						t.Errorf("workers=%d pipeline=%v merge %d: %+v, want %+v",
							v.workers, v.pipeline, i, res.Merges[i], solo.Merges[i])
						return
					}
				}
			}(v)
		}
	}
	wg.Wait()
}

// TestRaceSharedRecorder runs several instrumented pipelines concurrently
// against one Recorder: counter writes from all goroutines must be
// race-free and sum exactly, and interleaved Phase/end pairs from different
// goroutines must be tolerated without panics.
func TestRaceSharedRecorder(t *testing.T) {
	const pipelines = 4
	g := raceGraph(3)
	serial := core.Similarity(g)

	rec := obs.New()
	var wg sync.WaitGroup
	errs := make(chan error, pipelines)
	for p := 0; p < pipelines; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pl := core.SimilarityParallelRecorded(g, 4, rec)
			if _, err := core.SweepRecorded(g, pl, rec); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got, want := rec.Counter(core.CtrSimilarityPairs), int64(pipelines)*int64(len(serial.Pairs)); got != want {
		t.Fatalf("shared counter %s = %d, want %d", core.CtrSimilarityPairs, got, want)
	}
	rep := rec.Report()
	if rep == nil || len(rep.Phases) == 0 {
		t.Fatal("shared recorder produced an empty report")
	}
}
