package linkclust

import (
	"context"
	"os"
	"testing"

	"linkclust/internal/graph"
	"linkclust/internal/planted"
	"linkclust/internal/rng"
)

// Root-level differential matrix for the out-of-core sweep: the spilled
// engine against the serial and pipelined engines, across graph families,
// worker counts, and both radix-bucket widths, plus the facade's
// budget-breach reroute driven by a genuinely tiny budget rather than an
// injected fault.

// spillDiffGraphs returns the matrix families paired with the bucket-width
// regime their pair list lands in. The partitioner narrows to 8-bit buckets
// below 1<<13 incident pairs and uses 16-bit buckets above (see
// core/pipeline.go); covering both proves the spilled reader agrees with
// the in-memory bucket policy in each regime.
func spillDiffGraphs(t *testing.T) map[string]struct {
	g    *Graph
	wide bool
} {
	t.Helper()
	pcfg := planted.DefaultConfig()
	pcfg.Nodes = 150
	pcfg.Communities = 6
	bench, err := planted.Generate(pcfg)
	if err != nil {
		t.Fatalf("planted: %v", err)
	}
	return map[string]struct {
		g    *Graph
		wide bool
	}{
		"random-narrow": {graph.ErdosRenyi(40, 0.15, rng.New(11)), false},
		"random-wide":   {graph.ErdosRenyi(300, 0.06, rng.New(12)), true},
		"planted":       {bench.Graph, true},
		"word-assoc":    {goldenGraph(t), true},
	}
}

// TestSpilledDifferentialMatrix: on every family and T ∈ {1,4,8}, the
// spilled sweep must reproduce the serial sweep bit for bit and agree with
// the pipelined engine, while its bucket/byte counters stay
// worker-invariant.
func TestSpilledDifferentialMatrix(t *testing.T) {
	for name, tc := range spillDiffGraphs(t) {
		t.Run(name, func(t *testing.T) {
			g := tc.g
			if wide := Similarity(g).NumIncidentPairs() >= 1<<13; wide != tc.wide {
				t.Fatalf("family sized for wide=%v buckets but NumIncidentPairs lands in wide=%v", tc.wide, wide)
			}
			serial, err := SweepCtx(context.Background(), g, Similarity(g), nil)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			want := sha(canonMerges(serial))
			var buckets, bytes int64 = -1, -1
			for _, workers := range []int{1, 4, 8} {
				pip, err := SweepPipelined(g, Similarity(g), workers)
				if err != nil {
					t.Fatalf("pipelined T=%d: %v", workers, err)
				}
				if got := sha(canonMerges(pip)); got != want {
					t.Fatalf("pipelined T=%d hash %s, serial %s", workers, got, want)
				}
				rec := NewRecorder()
				sp, err := SweepSpilledCtx(context.Background(), g, Similarity(g), workers, t.TempDir(), rec)
				if err != nil {
					t.Fatalf("spilled T=%d: %v", workers, err)
				}
				if got := sha(canonMerges(sp)); got != want {
					t.Fatalf("spilled T=%d hash %s, serial %s", workers, got, want)
				}
				b, by := rec.Counter(CtrSpillBuckets), rec.Counter(CtrSpillBytesWritten)
				if b < 1 || by < 1 {
					t.Fatalf("T=%d: buckets=%d bytes=%d, want both positive", workers, b, by)
				}
				if buckets >= 0 && (b != buckets || by != bytes) {
					t.Fatalf("T=%d: buckets/bytes %d/%d, want worker-invariant %d/%d",
						workers, b, by, buckets, bytes)
				}
				buckets, bytes = b, by
			}
		})
	}
}

// TestSpilledBudgetReroute drives the facade ladder with a real 1-byte
// budget — any allocation breaches it, no fault injection involved. The
// run must reroute through the spilled sweep (spill counter up, degrade
// counter untouched), stay bitwise golden at every worker count, and leave
// the caller's spill directory empty.
func TestSpilledBudgetReroute(t *testing.T) {
	g := goldenGraph(t)
	for _, workers := range []int{1, 4, 8} {
		dir := t.TempDir()
		rec := NewRecorder()
		res, err := ClusterCtx(context.Background(), g, ClusterOptions{
			Workers:        workers,
			Recorder:       rec,
			MemBudgetBytes: 1,
			SpillDir:       dir,
		})
		if err != nil {
			t.Fatalf("T=%d: %v", workers, err)
		}
		if got := sha(canonMerges(res)); got != goldenClusterSHA {
			t.Fatalf("T=%d: hash %s, golden %s", workers, got, goldenClusterSHA)
		}
		if got := rec.Counter(CtrMemBudgetSpills); got != 1 {
			t.Fatalf("T=%d: %s = %d, want 1", workers, CtrMemBudgetSpills, got)
		}
		if got := rec.Counter(CtrMemBudgetDegrades); got != 0 {
			t.Fatalf("T=%d: %s = %d, want 0", workers, CtrMemBudgetDegrades, got)
		}
		if rec.Counter(CtrSpillBytesWritten) < 1 {
			t.Fatalf("T=%d: reroute recorded no spill bytes", workers)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("T=%d: %d entries left in the spill dir", workers, len(entries))
		}
	}
}
